//! fig_kv: tiered KV cache — warm-capacity × prefix-share sweep.
//!
//! The paper evaluates LLC policies with all KV state DRAM-resident.
//! This target attaches the tiered KV subsystem (a capacity-limited
//! warm store over a CXL/NVMe-like slow tier) and asks whether the
//! paper's policy ranking survives KV pressure: a multi-tenant mix of
//! shared-prefix decode tenants runs under every (warm capacity ×
//! prefix share × policy) cell, plus a no-tier reference column.
//!
//! Two effects compete once the tier is attached:
//!
//! * a *shared* system-prompt prefix concentrates reuse — prefix-
//!   pinning eviction keeps those blocks warm for every tenant;
//! * *private* context overflows a tight warm tier, so requests stall
//!   on promotions and the prefix-cache-aware arbiter (`PFA`, and its
//!   throttled composition `dynmg+PFA`) gets room to reorder around
//!   mid-promotion tenants.
//!
//! Every cell runs in both step modes and asserts byte-identical
//! statistics (cycles, per-request reports, KV counters) — extending
//! the Skip ≡ Cycle guarantee to the KV tier. The report calls out the
//! cells whose policy ranking *inverts* relative to the no-tier
//! reference of the same prefix share. One JSON record per cell goes
//! to stdout; `LLAMCAT_FIG_KV_JSON` names an optional machine-readable
//! artifact (`BENCH_sim_speed.json` archives its throughput numbers).
//!
//! Scale via `LLAMCAT_SCALE` as usual (full | half | quick).

use std::time::Instant;

use llamcat::spec::{KvSpec, MixSpec, PolicySpec};
use llamcat_bench::{scale_divisor, scale_label, Campaign, CellRecord};
use llamcat_sim::system::StepMode;
use llamcat_trace::workloads::WorkloadSpec;

const TENANTS: usize = 4;

fn shared_prefix_mix(seq_len: usize, prefix_len: usize) -> MixSpec {
    let mut mix = MixSpec::interleaved();
    for _ in 0..TENANTS {
        mix = mix.request(
            WorkloadSpec::SharedPrefix {
                heads: 8,
                group_size: 8,
                head_dim: 128,
                prefix_len,
            },
            seq_len,
            0,
        );
    }
    mix
}

fn policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::unoptimized(),
        PolicySpec::dynmg_bma(),
        PolicySpec::from_name("PFA").expect("PFA resolves compositionally"),
        PolicySpec::from_name("dynmg+PFA").expect("dynmg+PFA resolves"),
    ]
}

/// Policy ranking of one scenario: labels ordered fastest-first
/// (ties broken by policy order, which is deterministic).
fn ranking(records: &[&CellRecord]) -> Vec<String> {
    let mut by_cycles: Vec<(u64, String)> = records
        .iter()
        .map(|r| (r.report.cycles, r.cell.policy.label()))
        .collect();
    by_cycles.sort_by_key(|r| r.0);
    by_cycles.into_iter().map(|(_, l)| l).collect()
}

fn assert_modes_match(cycle: &CellRecord, skip: &CellRecord, what: &str) {
    assert_eq!(cycle.report.cycles, skip.report.cycles, "{what}: cycles");
    assert_eq!(
        serde_json::to_string(&cycle.report.requests).unwrap(),
        serde_json::to_string(&skip.report.requests).unwrap(),
        "{what}: per-request stats diverged between step modes"
    );
    assert_eq!(
        serde_json::to_string(&cycle.report.kv).unwrap(),
        serde_json::to_string(&skip.report.kv).unwrap(),
        "{what}: KV tier counters diverged between step modes"
    );
}

fn main() {
    let div = scale_divisor();
    let seq_len = 512 / div;

    // Prefix shares (fraction of each tenant's context that is the
    // common system prompt) and warm capacities, sized against the
    // mix's KV footprint: each tenant streams seq_len/2 warm blocks of
    // K rows, so `4*seq_len` blocks hold everything with room to
    // spare and `seq_len/8` forces continuous eviction.
    let shares: &[f64] = if div >= 8 {
        &[0.0, 0.875]
    } else {
        &[0.0, 0.5, 0.875]
    };
    let caps: Vec<usize> = if div >= 8 {
        vec![(seq_len / 8).max(2), 4 * seq_len]
    } else {
        vec![(seq_len / 8).max(2), seq_len / 2, 4 * seq_len]
    };

    let mixes: Vec<(f64, usize, MixSpec)> = shares
        .iter()
        .map(|&s| {
            let prefix_len = (seq_len as f64 * s) as usize;
            (s, prefix_len, shared_prefix_mix(seq_len, prefix_len))
        })
        .collect();
    let kvs: Vec<KvSpec> = caps.iter().map(|&c| KvSpec::prefix_pin(c)).collect();
    let pols = policies();
    let n_pol = pols.len();
    let n_kv = kvs.len();

    println!(
        "# fig_kv — tiered KV cache: warm capacity x prefix share x policy \
         (scale: {}, seq {seq_len}, {TENANTS} tenants, caps {caps:?} blocks)",
        scale_label()
    );

    let tiered = |mode| {
        Campaign::new("fig_kv")
            .mixes(mixes.iter().map(|(_, _, m)| m.clone()))
            .kvs(kvs.iter().copied())
            .policies(pols.clone())
            .baseline(PolicySpec::unoptimized())
            .step_mode(mode)
    };
    let no_tier = |mode| {
        Campaign::new("fig_kv-reference")
            .mixes(mixes.iter().map(|(_, _, m)| m.clone()))
            .policies(pols.clone())
            .baseline(PolicySpec::unoptimized())
            .step_mode(mode)
    };

    // Both campaigns, both modes; Skip must reproduce Cycle exactly.
    let t_cycle = tiered(StepMode::Cycle).run().expect("tiered sweep");
    let t_skip = tiered(StepMode::Skip).run().expect("tiered sweep (skip)");
    let r_cycle = no_tier(StepMode::Cycle).run().expect("reference sweep");
    let r_skip = no_tier(StepMode::Skip)
        .run()
        .expect("reference sweep (skip)");
    for (c, s) in t_cycle.records.iter().zip(&t_skip.records) {
        assert_modes_match(c, s, "tiered");
    }
    for (c, s) in r_cycle.records.iter().zip(&r_skip.records) {
        assert_modes_match(c, s, "no-tier");
    }

    let mut json_points: Vec<String> = Vec::new();
    let mut inversions: Vec<String> = Vec::new();
    for (si, (share, prefix_len, _)) in mixes.iter().enumerate() {
        // Reference ranking: the same mix with DRAM-resident KV.
        let ref_recs: Vec<&CellRecord> = (0..n_pol)
            .map(|p| &r_cycle.records[si * n_pol + p])
            .collect();
        let ref_rank = ranking(&ref_recs);
        println!(
            "\n### prefix share {:.0}% (prefix {prefix_len} of {seq_len})  \
             no-tier ranking: {}",
            share * 100.0,
            ref_rank.join(" > ")
        );
        println!(
            "{:>10} {:>12} {:>12} {:>9} {:>11} {:>10} {:>9}",
            "warm-cap", "policy", "cycles", "speedup", "kv-hit-rate", "promotions", "evictions"
        );
        for (ki, cap) in caps.iter().enumerate() {
            let recs: Vec<&CellRecord> = (0..n_pol)
                .map(|p| &t_cycle.records[(si * n_kv + ki) * n_pol + p])
                .collect();
            for rec in &recs {
                let kv = rec.report.kv.as_ref().expect("tiered cells report KV");
                let hit_rate = kv.hits as f64 / (kv.lookups.max(1)) as f64;
                println!(
                    "{:>10} {:>12} {:>12} {:>8.3}x {:>11.3} {:>10} {:>9}",
                    cap,
                    rec.cell.policy.label(),
                    rec.report.cycles,
                    rec.speedup.unwrap_or(1.0),
                    hit_rate,
                    kv.promotions,
                    kv.evictions
                );
                json_points.push(format!(
                    "{{\"share\": {share}, \"prefix_len\": {prefix_len}, \
                     \"warm_capacity_blocks\": {cap}, \"policy\": \"{}\", \
                     \"cycles\": {}, \"speedup\": {:.6}, \"kv_hit_rate\": {hit_rate:.6}, \
                     \"promotions\": {}, \"evictions\": {}, \"spec_hash\": {}}}",
                    rec.cell.policy.label(),
                    rec.report.cycles,
                    rec.speedup.unwrap_or(1.0),
                    kv.promotions,
                    kv.evictions,
                    rec.spec_hash,
                ));
            }
            let rank = ranking(&recs);
            if rank != ref_rank {
                let msg = format!(
                    "share {:.0}% cap {cap}: {} (no-tier: {})",
                    share * 100.0,
                    rank.join(" > "),
                    ref_rank.join(" > ")
                );
                println!("    ranking INVERTS: {msg}");
                inversions.push(msg);
            }
        }
    }
    if inversions.is_empty() {
        println!("\nno ranking inversions: the paper's ordering survives the KV tier");
    } else {
        println!(
            "\n{} cell group(s) invert the paper's no-tier policy ranking",
            inversions.len()
        );
    }

    // Deterministic JSONL artifact (byte-identical across runs).
    println!("\n## JSONL");
    for line in &json_points {
        println!("{line}");
    }

    // Simulator throughput on a representative tight-capacity cell,
    // both modes, sequential timing (the cyc/s figure
    // BENCH_sim_speed.json tracks under `pr7_kv`).
    let campaign = tiered(StepMode::Cycle);
    let cells = campaign.cells();
    let probe = cells.len() / 2; // mid-grid: pressured but not degenerate
    let mut speed = Vec::new();
    for mode in [StepMode::Cycle, StepMode::Skip] {
        let exp = cells[probe].experiment(&campaign).step_mode(mode);
        let t0 = Instant::now();
        let r = exp.run();
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "[fig_kv] throughput {} {mode:?}: {} cycles in {wall:.3}s = {:.0} cyc/s",
            cells[probe].policy.label(),
            r.cycles,
            r.cycles as f64 / wall
        );
        speed.push((mode, r.cycles, wall));
    }

    if let Ok(path) = std::env::var("LLAMCAT_FIG_KV_JSON") {
        let mut json = String::from("{\n  \"schema\": \"llamcat-fig-kv/1\",\n");
        json.push_str(&llamcat_bench::bench_meta_json_fields());
        json.push_str(&format!(
            "  \"seq_len\": {seq_len},\n  \"tenants\": {TENANTS},\n"
        ));
        json.push_str("  \"throughput\": [\n");
        for (i, (mode, cycles, wall)) in speed.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"cell\": \"{}\", \"mode\": \"{mode:?}\", \"cycles\": {cycles}, \
                 \"wall_s\": {wall:.4}, \"cycles_per_sec\": {:.0}}}{}\n",
                cells[probe].policy.label(),
                *cycles as f64 / wall,
                if i + 1 == speed.len() { "" } else { "," }
            ));
        }
        json.push_str("  ],\n  \"inversions\": [\n");
        for (i, msg) in inversions.iter().enumerate() {
            json.push_str(&format!(
                "    \"{msg}\"{}\n",
                if i + 1 == inversions.len() { "" } else { "," }
            ));
        }
        json.push_str("  ],\n  \"points\": [\n");
        for (i, line) in json_points.iter().enumerate() {
            json.push_str(&format!(
                "    {line}{}\n",
                if i + 1 == json_points.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write fig_kv JSON report");
        println!("wrote {path}");
    }
}
