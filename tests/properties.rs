//! Property-based tests (proptest) over the core data structures and
//! invariants of the simulator and the policies.

use proptest::prelude::*;

use llamcat::throttle::{Contention, DynMg, DynMgConfig, Dyncta, DynctaConfig, Lcs};
use llamcat_sim::arb::{ThrottleController, ThrottleInputs};
use llamcat_sim::cache::{InsertPolicy, SetAssocCache};
use llamcat_sim::mshr::{MshrFile, MshrOutcome, MshrTarget};
use llamcat_sim::types::LINE_BYTES;

// ---------------------------------------------------------------------
// Cache model vs a naive reference implementation.
// ---------------------------------------------------------------------

/// Straightforward LRU reference: per set, a vector ordered by recency.
struct RefCache {
    sets: Vec<Vec<u64>>, // most recent last
    assoc: usize,
    num_sets: u64,
}

impl RefCache {
    fn new(num_sets: usize, assoc: usize) -> Self {
        RefCache {
            sets: vec![Vec::new(); num_sets],
            assoc,
            num_sets: num_sets as u64,
        }
    }
    fn set_of(&self, line: u64) -> usize {
        (line % self.num_sets) as usize
    }
    fn access(&mut self, line: u64) -> bool {
        let s = self.set_of(line);
        if let Some(pos) = self.sets[s].iter().position(|&l| l == line) {
            self.sets[s].remove(pos);
            self.sets[s].push(line);
            true
        } else {
            false
        }
    }
    fn insert(&mut self, line: u64) {
        let s = self.set_of(line);
        if let Some(pos) = self.sets[s].iter().position(|&l| l == line) {
            self.sets[s].remove(pos);
        } else if self.sets[s].len() == self.assoc {
            self.sets[s].remove(0);
        }
        self.sets[s].push(line);
    }
}

proptest! {
    #[test]
    fn cache_matches_reference_model(
        ops in proptest::collection::vec((0u64..256, any::<bool>()), 1..400)
    ) {
        let mut dut = SetAssocCache::new(8, 4, 0);
        let mut reference = RefCache::new(8, 4);
        for (line, is_insert) in ops {
            let addr = line * LINE_BYTES;
            if is_insert {
                dut.insert(addr, false, InsertPolicy::Mru);
                reference.insert(line);
            } else {
                let got = dut.access(addr, false);
                let want = reference.access(line);
                prop_assert_eq!(got, want, "access({}) diverged", line);
            }
        }
    }

    #[test]
    fn cache_occupancy_never_exceeds_capacity(
        lines in proptest::collection::vec(0u64..512, 1..300)
    ) {
        let mut dut = SetAssocCache::new(4, 2, 0);
        for line in lines {
            dut.insert(line * LINE_BYTES, false, InsertPolicy::Mru);
            prop_assert!(dut.occupancy() <= 4 * 2);
        }
    }

    // -----------------------------------------------------------------
    // MSHR invariants.
    // -----------------------------------------------------------------

    #[test]
    fn mshr_never_exceeds_dimensions(
        ops in proptest::collection::vec((0u64..16, any::<bool>()), 1..300)
    ) {
        let mut mshr = MshrFile::new(4, 3);
        let mut pending: Vec<u64> = Vec::new();
        let mut per_line: std::collections::HashMap<u64, usize> = Default::default();
        for (line, register) in ops {
            let addr = line * LINE_BYTES;
            if register {
                let t = MshrTarget { req_id: 0, core: 0, is_write: false };
                match mshr.register(addr, t) {
                    MshrOutcome::Allocated => {
                        pending.push(addr);
                        per_line.insert(addr, 1);
                    }
                    MshrOutcome::Merged => {
                        *per_line.get_mut(&addr).expect("merged into pending") += 1;
                    }
                    MshrOutcome::FullEntries => {
                        prop_assert_eq!(mshr.occupancy(), 4);
                    }
                    MshrOutcome::FullTargets => {
                        prop_assert_eq!(per_line[&addr], 3);
                    }
                }
            } else if let Some(addr) = pending.pop() {
                let targets = mshr.complete(addr).expect("pending entry exists");
                prop_assert_eq!(targets.len(), per_line.remove(&addr).unwrap());
            }
            prop_assert!(mshr.occupancy() <= 4);
            for (_, &n) in per_line.iter() {
                prop_assert!(n <= 3);
            }
        }
    }

    // -----------------------------------------------------------------
    // Throttle controllers always produce legal limits.
    // -----------------------------------------------------------------

    #[test]
    fn throttle_limits_always_in_bounds(
        seed_mem in proptest::collection::vec(0u64..4000, 8),
        seed_idle in proptest::collection::vec(0u64..4000, 8),
        stalls in 0u64..2_000_000,
        windows in 1usize..6,
    ) {
        let controllers: Vec<Box<dyn ThrottleController>> = vec![
            Box::new(Dyncta::new(DynctaConfig::default())),
            Box::new(Lcs::new()),
            Box::new(DynMg::new(DynMgConfig::default())),
        ];
        for mut ctl in controllers {
            ctl.reset(8);
            let mut max_tb = vec![windows; 8];
            let mut c_mem = seed_mem.clone();
            let mut c_idle = seed_idle.clone();
            let progress: Vec<u64> = (0..8).map(|i| (i as u64) * 1000).collect();
            let tbs: Vec<u64> = vec![1; 8];
            let active = vec![windows; 8];
            for step in 1..40u64 {
                for (m, i) in c_mem.iter_mut().zip(c_idle.iter_mut()) {
                    *m += step * 37 % 401;
                    *i += step * 13 % 7;
                }
                let inputs = ThrottleInputs {
                    cycle: step * 500,
                    num_windows: windows,
                    num_slices: 8,
                    progress: &progress,
                    c_mem: &c_mem,
                    c_idle: &c_idle,
                    llc_stall_cycles: stalls + step * 100,
                    active_tbs: &active,
                    tbs_completed: &tbs,
                };
                ctl.tick(&inputs, &mut max_tb);
                for &m in &max_tb {
                    prop_assert!(m >= 1 && m <= windows,
                        "{}: produced illegal limit {m}", ctl.name());
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Contention classification is total and monotone.
    // -----------------------------------------------------------------

    #[test]
    fn contention_classification_total_and_monotone(t in 0.0f64..1.0) {
        let c = Contention::classify(t);
        let rank = |c: Contention| match c {
            Contention::Low => 0,
            Contention::Normal => 1,
            Contention::High => 2,
            Contention::Extreme => 3,
        };
        // Monotone: a higher stall proportion never maps to a lower band.
        let c2 = Contention::classify((t + 0.05).min(1.0));
        prop_assert!(rank(c2) >= rank(c));
    }

    // -----------------------------------------------------------------
    // Trace generation invariants (addresses within tensors, coverage).
    // -----------------------------------------------------------------

    #[test]
    fn trace_addresses_stay_in_tensor_bounds(
        heads in 1usize..4,
        group in 1usize..5,
        ltiles in 1usize..6,
    ) {
        use llamcat_sim::prog::Instr;
        use llamcat_trace::prelude::*;
        let op = LogitOp {
            heads,
            group_size: group,
            seq_len: ltiles * 32,
            head_dim: 128,
        };
        prop_assume!(op.validate().is_ok());
        let (program, meta) = generate_default(&op, &TraceGenConfig::default());
        prop_assert_eq!(meta.num_blocks, heads * group * ltiles);
        let q_end = Q_BASE + op.q_bytes();
        let k_end = K_BASE + op.k_bytes();
        let s_end = SCORE_BASE + op.score_bytes();
        for block in &program.blocks {
            for i in &block.instrs {
                match *i {
                    Instr::Load { addr, bytes } => {
                        let end = addr + bytes as u64;
                        let in_q = addr >= Q_BASE && end <= q_end;
                        let in_k = addr >= K_BASE && end <= k_end;
                        prop_assert!(in_q || in_k, "load outside Q/K: {addr:#x}");
                    }
                    Instr::Store { addr, bytes } => {
                        let end = addr + bytes as u64;
                        prop_assert!(addr >= SCORE_BASE && end <= s_end,
                            "store outside scores: {addr:#x}");
                    }
                    _ => {}
                }
            }
        }
        // Load traffic is exactly G streams of K plus the Q rows.
        let q_traffic = (heads * group * ltiles) as u64 * op.k_row_bytes();
        prop_assert_eq!(
            meta.total_load_bytes,
            op.k_bytes() * group as u64 + q_traffic
        );
        prop_assert_eq!(meta.total_store_bytes, op.score_bytes());
    }
}
