//! Hardware cost model for the added structures (Section 6.1).
//!
//! The paper implements the arbiter and hit buffer in Chisel and
//! synthesizes them with Synopsys Design Compiler against the 15 nm
//! NanGate-style open cell library at 1.96 GHz, reporting
//! 7312.93 µm² for the arbiter (including the request queue, "logically
//! an indivisible unit") and 3088.61 µm² for the hit buffer.
//!
//! Proprietary synthesis is unavailable here, so this module substitutes
//! an analytical gate/bit counting model: storage flops, CAM comparator
//! bits and mux bits, each weighted by a 15 nm area constant. The two
//! constants that dominate (flop area, comparator-bit area) are
//! **calibrated against the paper's two reported data points**, so the
//! model reproduces them exactly for the Table 5 configuration and —
//! more usefully — extrapolates how cost scales with queue depths,
//! MSHR geometry and core count (the `area_cost` bench).

use serde::{Deserialize, Serialize};

/// Area constants in µm² per bit, 15 nm library at 1.96 GHz.
///
/// Calibrated so that [`arbiter_area`] and [`hit_buffer_area`] match the
/// paper's synthesis results for the Table 5 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaConstants {
    /// One storage flip-flop.
    pub flop: f64,
    /// One CAM / comparator bit (XNOR + wired-AND share).
    pub cmp_bit: f64,
    /// One mux/priority-encoder bit.
    pub mux_bit: f64,
}

impl Default for AreaConstants {
    fn default() -> Self {
        // Solved from the paper's two synthesis numbers (see module doc).
        AreaConstants {
            flop: 0.6630,
            cmp_bit: 0.8533,
            mux_bit: 0.6,
        }
    }
}

/// Structural parameters of the speculation/arbitration hardware that
/// determine its cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArbiterGeometry {
    /// Request-queue entries (part of the arbiter).
    pub req_q_entries: usize,
    /// sent_reqs FIFO entries.
    pub sent_reqs_entries: usize,
    /// MSHR snapshot rows visible to the arbiter.
    pub mshr_entries: usize,
    /// Progress counters (one per core).
    pub num_cores: usize,
    /// Bits of a line address.
    pub addr_bits: usize,
    /// Bits of one progress counter.
    pub counter_bits: usize,
}

impl Default for ArbiterGeometry {
    fn default() -> Self {
        // Table 5: req_q_size 12, mshr entries 6, 16 cores; sent_reqs
        // sized to cover hit+mshr latency (8 cycles).
        ArbiterGeometry {
            req_q_entries: 12,
            sent_reqs_entries: 8,
            mshr_entries: 6,
            num_cores: 16,
            addr_bits: 42,
            counter_bits: 16,
        }
    }
}

/// Hit-buffer geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HitBufferGeometry {
    pub entries: usize,
    pub addr_bits: usize,
}

impl Default for HitBufferGeometry {
    fn default() -> Self {
        HitBufferGeometry {
            entries: 48,
            addr_bits: 42,
        }
    }
}

/// Area of the hit buffer in µm²: an `entries`-deep FIFO of line
/// addresses with a fully associative (CAM) lookup port.
pub fn hit_buffer_area(g: &HitBufferGeometry, k: &AreaConstants) -> f64 {
    let storage_flops = g.entries * (g.addr_bits + 1); // +valid
    let cam_bits = g.entries * g.addr_bits;
    storage_flops as f64 * k.flop + cam_bits as f64 * k.cmp_bit
}

/// Area of the arbiter in µm², inclusive of the request queue (the paper
/// reports them as one unit).
pub fn arbiter_area(g: &ArbiterGeometry, k: &AreaConstants) -> f64 {
    // Request queue entries: address + core id + r/w + valid.
    let core_bits = usize::BITS as usize - (g.num_cores - 1).leading_zeros() as usize;
    let req_entry_bits = g.addr_bits + core_bits + 2;
    let req_q_flops = g.req_q_entries * req_entry_bits;
    // sent_reqs: address + spec bit + age counter (3 bits for <= 8).
    let sent_flops = g.sent_reqs_entries * (g.addr_bits + 1 + 3);
    // Progress counters.
    let counter_flops = g.num_cores * g.counter_bits;
    let flops = req_q_flops + sent_flops + counter_flops;

    // Comparators: each queue entry matched against MSHR snapshot rows
    // and sent_reqs rows (Fig 5 combination step).
    let match_bits = g.req_q_entries * (g.mshr_entries + g.sent_reqs_entries) * g.addr_bits;
    // Counter-ranking tree (req_q - 1 pairwise comparisons).
    let rank_bits = (g.req_q_entries - 1) * g.counter_bits;
    let cmp_bits = match_bits + rank_bits;

    // Selection mux: queue width muxed down to one entry.
    let mux_bits = g.req_q_entries * req_entry_bits;

    flops as f64 * k.flop + cmp_bits as f64 * k.cmp_bit + mux_bits as f64 * k.mux_bit
}

/// Convenience report for the §6.1 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaReport {
    pub arbiter_um2: f64,
    pub hit_buffer_um2: f64,
}

/// Computes the default-geometry report (Table 5 system).
pub fn default_report() -> AreaReport {
    let k = AreaConstants::default();
    AreaReport {
        arbiter_um2: arbiter_area(&ArbiterGeometry::default(), &k),
        hit_buffer_um2: hit_buffer_area(&HitBufferGeometry::default(), &k),
    }
}

/// The paper's synthesis results for reference.
pub const PAPER_ARBITER_UM2: f64 = 7312.93;
pub const PAPER_HIT_BUFFER_UM2: f64 = 3088.61;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_to_paper_synthesis() {
        let r = default_report();
        let arb_err = (r.arbiter_um2 - PAPER_ARBITER_UM2).abs() / PAPER_ARBITER_UM2;
        let hb_err = (r.hit_buffer_um2 - PAPER_HIT_BUFFER_UM2).abs() / PAPER_HIT_BUFFER_UM2;
        assert!(
            arb_err < 0.02,
            "arbiter {} vs paper {}",
            r.arbiter_um2,
            PAPER_ARBITER_UM2
        );
        assert!(
            hb_err < 0.02,
            "hit buffer {} vs paper {}",
            r.hit_buffer_um2,
            PAPER_HIT_BUFFER_UM2
        );
    }

    #[test]
    fn area_scales_with_entries() {
        let k = AreaConstants::default();
        let small = hit_buffer_area(
            &HitBufferGeometry {
                entries: 16,
                addr_bits: 42,
            },
            &k,
        );
        let big = hit_buffer_area(&HitBufferGeometry::default(), &k);
        assert!(
            big > small * 2.5 && big < small * 3.5,
            "3x entries ≈ 3x area"
        );
    }

    #[test]
    fn arbiter_dominated_by_matching_logic() {
        let k = AreaConstants::default();
        let g = ArbiterGeometry::default();
        let total = arbiter_area(&g, &k);
        let mut no_cam = g;
        no_cam.mshr_entries = 0;
        no_cam.sent_reqs_entries = 0;
        let without = arbiter_area(&no_cam, &k);
        assert!(
            total - without > total * 0.5,
            "snapshot matching should dominate the arbiter cost"
        );
    }

    #[test]
    fn overhead_is_small_versus_slice() {
        // Sanity argument the paper makes: ~10k µm² per slice is
        // negligible against a 2 MB SRAM slice (~1 mm² class).
        let r = default_report();
        let added = r.arbiter_um2 + r.hit_buffer_um2;
        assert!(added < 15_000.0);
    }
}
