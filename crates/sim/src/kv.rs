//! Tiered KV-cache memory model below the LLC.
//!
//! LLM serving keeps each request's attention KV blocks in a
//! capacity-limited **warm tier** (GPU/accelerator-local memory) backed
//! by a **slow second tier** (CXL memory or NVMe) holding everything
//! that does not fit — the architecture of LMCache-style multi-tier KV
//! layers. This module models that boundary at the point where it is
//! visible to this simulator: a DRAM read for a KV line may only
//! proceed once its KV block is resident in the warm tier. A cold block
//! must first be *promoted* over a serialized, latency- and
//! bandwidth-limited link with a bounded number of in-flight transfers;
//! reads for a block that is mid-promotion merge into the transfer and
//! wait. Completed promotions evict under a pluggable policy
//! ([`KvEviction`]): plain LRU, or prefix-pinning that protects the
//! cross-request shared-prompt window.
//!
//! ## Address classification
//!
//! The tier never sees instruction streams — it classifies the line
//! addresses the LLC misses on. The trace layer (`llamcat-trace`) lays
//! tensors out at fixed bases inside each request's 2^40-byte VA slot:
//! K at 2^32 and V at 2^36 (each region smaller than the next base).
//! Lines whose in-slot offset falls in either window are per-request KV
//! traffic. Addresses at or above [`SHARED_KV_BASE`] (2^56, above every
//! relocated slot) form the **shared-prefix window**: system-prompt KV
//! reused verbatim across requests, exempt from per-request relocation
//! (`llamcat_trace::mix` carves it out of the VA shift). A test in
//! `llamcat-trace` pins these constants against the trace-side tensor
//! map.
//!
//! ## Event-bound contract
//!
//! The tier is fully timestamped — transfers carry absolute completion
//! cycles, the LRU order is a sequence counter, and nothing accrues
//! per-cycle — so its closed-form `skip` is a no-op and
//! [`KvTier::next_event`] is exact: the earliest in-flight completion,
//! or "now" while released waiters are still draining into DRAM under
//! backpressure. `tests/kv_equiv.rs` pins Skip ≡ Cycle byte-equality
//! with the tier attached, including the per-request KV counters.

use std::collections::{BTreeMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::stats::{KvTierStats, RequestKvStats};
use crate::types::{Addr, Cycle, SliceId};

/// Base of the shared-prefix KV window: above every per-request VA slot
/// (requests relocate in 2^40-byte strides), so shared-prompt KV blocks
/// alias across requests instead of relocating with them.
pub const SHARED_KV_BASE: Addr = 1 << 56;

/// Per-request VA slot mask (`llamcat_trace::mix::REQUEST_VA_STRIDE - 1`).
const VA_SLOT_MASK: Addr = (1 << 40) - 1;
/// K-tensor window inside a request's VA slot (trace-side `K_BASE` up
/// to the next tensor base).
const KV_K_WINDOW: std::ops::Range<Addr> = (1 << 32)..(1 << 35);
/// V-tensor window inside a request's VA slot.
const KV_V_WINDOW: std::ops::Range<Addr> = (1 << 36)..(1 << 39);

/// Whether a line address is KV traffic (per-request K/V tensors or the
/// shared-prefix window) and therefore subject to the tier.
#[inline]
pub fn is_kv_addr(addr: Addr) -> bool {
    if addr >= SHARED_KV_BASE {
        return true;
    }
    let off = addr & VA_SLOT_MASK;
    KV_K_WINDOW.contains(&off) || KV_V_WINDOW.contains(&off)
}

/// Eviction policy of the warm tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum KvEviction {
    /// Least-recently-used over all warm blocks.
    #[default]
    Lru,
    /// LRU over per-request blocks first; shared-prefix blocks
    /// (at/above [`SHARED_KV_BASE`]) are evicted only when no
    /// per-request block remains.
    PrefixPin,
}

/// Configuration of the tiered KV store.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KvTierConfig {
    /// Warm-tier capacity in KV blocks.
    pub warm_capacity_blocks: usize,
    /// KV block size in bytes (promotion granularity; multiple of the
    /// line size).
    pub block_bytes: u64,
    /// Slow-tier access latency in core cycles (CXL ~ hundreds, NVMe ~
    /// tens of thousands), paid once per promotion.
    pub slow_latency: Cycle,
    /// Slow-tier link bandwidth in bytes per core cycle; promotions
    /// serialize on the link.
    pub slow_bytes_per_cycle: u64,
    /// Bound on concurrent in-flight promotions; cold reads beyond it
    /// wait at the head of their slice's DRAM queue.
    pub max_inflight: usize,
    pub eviction: KvEviction,
}

impl KvTierConfig {
    /// A CXL-class second tier: 4 KiB blocks, ~300-cycle access
    /// latency, 16 B/cycle link (~31 GB/s at 1.96 GHz), 8 transfers in
    /// flight.
    pub fn cxl(warm_capacity_blocks: usize, eviction: KvEviction) -> Self {
        KvTierConfig {
            warm_capacity_blocks,
            block_bytes: 4096,
            slow_latency: 300,
            slow_bytes_per_cycle: 16,
            max_inflight: 8,
            eviction,
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.warm_capacity_blocks == 0 {
            return Err("kv: warm capacity must be at least one block".into());
        }
        if self.block_bytes == 0 || !self.block_bytes.is_multiple_of(crate::types::LINE_BYTES) {
            return Err(format!(
                "kv: block_bytes {} must be a positive multiple of the line size",
                self.block_bytes
            ));
        }
        if self.slow_bytes_per_cycle == 0 {
            return Err("kv: slow-tier bandwidth must be positive".into());
        }
        if self.slow_latency == 0 {
            return Err("kv: slow-tier latency must be at least one cycle".into());
        }
        if self.max_inflight == 0 {
            return Err("kv: max_inflight must be at least one".into());
        }
        Ok(())
    }

    /// Link occupancy of one block transfer.
    fn transfer_cycles(&self) -> Cycle {
        self.block_bytes.div_ceil(self.slow_bytes_per_cycle)
    }
}

/// How the tier disposes of one DRAM read at the head of a slice's
/// dispatch queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvClass {
    /// Not KV traffic — dispatch to DRAM unconditionally.
    Bypass,
    /// KV block is warm — dispatch, then report the hit via
    /// [`KvTier::note_hit`].
    Warm,
    /// KV block is mid-promotion — absorb the read as a waiter
    /// ([`KvTier::merge_wait`]).
    Inflight,
    /// KV block is cold — start a promotion ([`KvTier::start_promotion`])
    /// if a transfer slot is free, otherwise retry next cycle.
    Cold,
}

/// A DRAM read parked in the tier until its block's promotion completes.
#[derive(Debug, Clone, Copy)]
struct Waiter {
    line: Addr,
    slice: SliceId,
    request: u32,
}

/// One in-flight promotion.
#[derive(Debug, Clone)]
struct Promotion {
    done_at: Cycle,
    /// Request whose read started the transfer (evictions it later
    /// forces are charged here).
    initiator: u32,
    waiters: Vec<Waiter>,
}

/// The tiered KV store. Owned by [`crate::system::System`]; intercepts
/// the slice→DRAM read path.
#[derive(Clone)]
pub struct KvTier {
    cfg: KvTierConfig,
    /// Monotonic touch sequence backing the LRU order.
    seq: u64,
    /// Warm blocks → last-touch sequence number.
    warm: BTreeMap<Addr, u64>,
    /// In-flight promotions by block base.
    inflight: BTreeMap<Addr, Promotion>,
    /// The serialized slow-tier link is busy until this cycle.
    link_free_at: Cycle,
    /// Waiters whose promotion completed, draining into DRAM in FIFO
    /// order under channel backpressure.
    ready: VecDeque<Waiter>,
    /// Per-request count of parked reads (waiters + ready); a request
    /// with any is "mid-promotion" for the prefix-aware arbiter.
    busy: Vec<u32>,
    /// Set when `busy` changed; the system re-publishes the boolean
    /// view to the slices before their next arbitration.
    pub busy_dirty: bool,
    pub total: KvTierStats,
    /// Per-request attribution, grown on demand (mirrors `total`).
    pub req_stats: Vec<RequestKvStats>,
    /// Scratch for completion sweeps (kept to avoid per-event allocs).
    due_scratch: Vec<Addr>,
}

impl KvTier {
    pub fn new(cfg: KvTierConfig) -> Self {
        cfg.validate().expect("invalid KV tier configuration");
        KvTier {
            cfg,
            seq: 0,
            warm: BTreeMap::new(),
            inflight: BTreeMap::new(),
            link_free_at: 0,
            ready: VecDeque::with_capacity(64),
            busy: Vec::new(),
            busy_dirty: true,
            total: KvTierStats::default(),
            req_stats: Vec::new(),
            due_scratch: Vec::with_capacity(16),
        }
    }

    /// Pre-sizes per-request state for `n` serving requests.
    pub fn reserve_requests(&mut self, n: usize) {
        if self.busy.len() < n {
            self.busy.resize(n, 0);
        }
        if self.req_stats.len() < n {
            self.req_stats.resize(n, RequestKvStats::default());
        }
    }

    pub fn config(&self) -> &KvTierConfig {
        &self.cfg
    }

    /// Block base containing `addr`.
    #[inline]
    fn block_of(&self, addr: Addr) -> Addr {
        addr - addr % self.cfg.block_bytes
    }

    #[inline]
    fn rstat(&mut self, r: u32) -> &mut RequestKvStats {
        let idx = r as usize;
        if idx >= self.req_stats.len() {
            self.req_stats.resize(idx + 1, RequestKvStats::default());
        }
        &mut self.req_stats[idx]
    }

    #[inline]
    fn busy_slot(&mut self, r: u32) -> &mut u32 {
        let idx = r as usize;
        if idx >= self.busy.len() {
            self.busy.resize(idx + 1, 0);
        }
        &mut self.busy[idx]
    }

    /// Per-request busy view (true = has a read parked in the tier).
    pub fn publish_busy(&self, out: &mut Vec<bool>) {
        out.clear();
        out.extend(self.busy.iter().map(|&c| c > 0));
    }

    /// Classifies the read at the head of a slice's dispatch queue.
    /// Pure — the caller commits via `note_hit` / `merge_wait` /
    /// `start_promotion` once the dispatch decision is final.
    pub fn classify(&self, line: Addr) -> KvClass {
        if !is_kv_addr(line) {
            return KvClass::Bypass;
        }
        let block = self.block_of(line);
        if self.warm.contains_key(&block) {
            KvClass::Warm
        } else if self.inflight.contains_key(&block) {
            KvClass::Inflight
        } else {
            KvClass::Cold
        }
    }

    /// Whether a cold read could start a promotion this cycle.
    pub fn can_start(&self) -> bool {
        self.inflight.len() < self.cfg.max_inflight
    }

    /// Records a warm hit (the read was dispatched to DRAM) and
    /// freshens the block's LRU position.
    pub fn note_hit(&mut self, line: Addr, request: u32) {
        let block = self.block_of(line);
        self.seq += 1;
        let seq = self.seq;
        *self.warm.get_mut(&block).expect("hit on a warm block") = seq;
        self.total.lookups += 1;
        self.total.hits += 1;
        let r = self.rstat(request);
        r.lookups += 1;
        r.hits += 1;
    }

    /// Parks a read behind the block's in-flight promotion.
    pub fn merge_wait(&mut self, line: Addr, request: u32, slice: SliceId) {
        let block = self.block_of(line);
        let w = Waiter {
            line,
            slice,
            request,
        };
        self.inflight
            .get_mut(&block)
            .expect("merge into an in-flight promotion")
            .waiters
            .push(w);
        self.total.lookups += 1;
        self.total.merges += 1;
        let r = self.rstat(request);
        r.lookups += 1;
        r.merges += 1;
        *self.busy_slot(request) += 1;
        self.busy_dirty = true;
    }

    /// Starts promoting a cold block; the read is parked as the first
    /// waiter. The caller checked [`KvTier::can_start`].
    pub fn start_promotion(&mut self, line: Addr, request: u32, slice: SliceId, now: Cycle) {
        debug_assert!(self.can_start(), "transfer queue full");
        let block = self.block_of(line);
        let start = now.max(self.link_free_at);
        let xfer = self.cfg.transfer_cycles();
        self.link_free_at = start + xfer;
        let done_at = start + self.cfg.slow_latency + xfer;
        debug_assert!(done_at > now, "promotions take at least one cycle");
        let prev = self.inflight.insert(
            block,
            Promotion {
                done_at,
                initiator: request,
                waiters: vec![Waiter {
                    line,
                    slice,
                    request,
                }],
            },
        );
        debug_assert!(prev.is_none(), "block was already in flight");
        self.total.lookups += 1;
        self.total.misses += 1;
        let r = self.rstat(request);
        r.lookups += 1;
        r.misses += 1;
        *self.busy_slot(request) += 1;
        self.busy_dirty = true;
    }

    /// Completes every promotion due by `now`: installs the block in
    /// the warm tier (evicting under the configured policy) and moves
    /// its waiters to the ready queue. Completions are processed in
    /// block-address order — deterministic and identical in both step
    /// modes, which execute this at the same cycles.
    pub fn advance(&mut self, now: Cycle) {
        if self.inflight.is_empty() {
            return;
        }
        self.due_scratch.clear();
        self.due_scratch.extend(
            self.inflight
                .iter()
                .filter(|(_, p)| p.done_at <= now)
                .map(|(&b, _)| b),
        );
        for i in 0..self.due_scratch.len() {
            let block = self.due_scratch[i];
            let p = self.inflight.remove(&block).expect("due promotion");
            self.total.promotions += 1;
            self.install_warm(block, p.initiator);
            self.ready.extend(p.waiters);
        }
    }

    fn install_warm(&mut self, block: Addr, initiator: u32) {
        self.seq += 1;
        self.warm.insert(block, self.seq);
        while self.warm.len() > self.cfg.warm_capacity_blocks {
            let victim = self.pick_victim().expect("warm tier over capacity");
            self.warm.remove(&victim);
            self.total.evictions += 1;
            self.rstat(initiator).evictions += 1;
        }
    }

    /// LRU victim under the configured policy. The warm set is small
    /// (the warm capacity), so a linear sweep is fine and keeps the
    /// order trivially deterministic.
    fn pick_victim(&self) -> Option<Addr> {
        let lru_of = |shared: Option<bool>| {
            self.warm
                .iter()
                .filter(|(&b, _)| shared.is_none_or(|s| (b >= SHARED_KV_BASE) == s))
                .min_by_key(|&(&b, &s)| (s, b))
                .map(|(&b, _)| b)
        };
        match self.cfg.eviction {
            KvEviction::Lru => lru_of(None),
            KvEviction::PrefixPin => lru_of(Some(false)).or_else(|| lru_of(Some(true))),
        }
    }

    /// Pops the next released waiter once its DRAM read was accepted;
    /// returns the tenant it belonged to.
    pub fn pop_ready(&mut self) -> u32 {
        let w = self.ready.pop_front().expect("ready waiter");
        let slot = self.busy_slot(w.request);
        debug_assert!(*slot > 0, "busy refcount underflow");
        *slot -= 1;
        self.busy_dirty = true;
        w.request
    }

    /// Head of the ready queue as `(line, slice)` for DRAM dispatch.
    pub fn ready_front(&self) -> Option<(Addr, SliceId)> {
        self.ready.front().map(|w| (w.line, w.slice))
    }

    /// True when no promotion is in flight and no released read is
    /// still waiting for a DRAM slot.
    pub fn is_idle(&self) -> bool {
        self.inflight.is_empty() && self.ready.is_empty()
    }

    /// Event bound: the earliest cycle `>= now` at which
    /// [`KvTier::advance`] or the ready-queue drain could do anything.
    /// Never late — transfers carry absolute completion cycles and the
    /// ready queue retries every cycle under DRAM backpressure.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if !self.ready.is_empty() {
            return Some(now);
        }
        self.inflight.values().map(|p| p.done_at.max(now)).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> KvTierConfig {
        KvTierConfig {
            warm_capacity_blocks: 2,
            block_bytes: 256,
            slow_latency: 10,
            slow_bytes_per_cycle: 64,
            max_inflight: 2,
            eviction: KvEviction::Lru,
        }
    }

    const K0: Addr = 1 << 32; // inside the K window

    #[test]
    fn address_classification() {
        assert!(is_kv_addr(1 << 32), "K base");
        assert!(is_kv_addr((1 << 32) + 4096));
        assert!(is_kv_addr(1 << 36), "V base");
        assert!(!is_kv_addr(0x1000_0000), "Q tensor");
        assert!(!is_kv_addr(1 << 35), "score tensor");
        assert!(!is_kv_addr(1 << 39), "output tensor");
        // Relocated request slots keep their classification.
        assert!(is_kv_addr((3 << 40) + (1 << 32)));
        assert!(!is_kv_addr((3 << 40) + 0x1000_0000));
        // The shared-prefix window is KV wherever it lands.
        assert!(is_kv_addr(SHARED_KV_BASE));
        assert!(is_kv_addr(SHARED_KV_BASE + (1 << 52)));
    }

    #[test]
    fn cold_miss_promotes_then_hits() {
        let mut kv = KvTier::new(cfg());
        assert_eq!(kv.classify(K0), KvClass::Cold);
        kv.start_promotion(K0, 0, 0, 0);
        assert_eq!(kv.classify(K0), KvClass::Inflight);
        assert_eq!(kv.classify(K0 + 64), KvClass::Inflight, "same block");
        // latency 10 + ceil(256/64)=4 transfer cycles.
        assert_eq!(kv.next_event(0), Some(14));
        kv.advance(13);
        assert_eq!(kv.classify(K0), KvClass::Inflight, "not done yet");
        kv.advance(14);
        assert_eq!(kv.classify(K0), KvClass::Warm);
        assert_eq!(kv.ready_front(), Some((K0, 0)));
        assert_eq!(kv.pop_ready(), 0);
        assert!(kv.is_idle());
        kv.note_hit(K0 + 64, 0);
        assert_eq!(kv.total.lookups, 2);
        assert_eq!(kv.total.misses, 1);
        assert_eq!(kv.total.hits, 1);
        assert_eq!(kv.total.promotions, 1);
    }

    #[test]
    fn link_serializes_promotions() {
        let mut kv = KvTier::new(cfg());
        kv.start_promotion(K0, 0, 0, 0);
        kv.start_promotion(K0 + 256, 1, 0, 0);
        assert!(!kv.can_start(), "max_inflight reached");
        // Second transfer starts when the link frees at cycle 4:
        // done at 4 + 10 + 4 = 18.
        kv.advance(14);
        assert_eq!(kv.classify(K0), KvClass::Warm);
        assert_eq!(kv.classify(K0 + 256), KvClass::Inflight);
        assert_eq!(kv.next_event(14), Some(14), "ready waiter drains now");
        kv.pop_ready();
        assert_eq!(kv.next_event(15), Some(18));
        kv.advance(18);
        assert_eq!(kv.classify(K0 + 256), KvClass::Warm);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut kv = KvTier::new(cfg()); // capacity 2
        for (i, r) in [(0u64, 0u32), (1, 1), (2, 2)] {
            kv.start_promotion(K0 + i * 256, r, 0, i * 100);
            kv.advance(i * 100 + 1000);
            kv.pop_ready();
        }
        assert_eq!(kv.total.evictions, 1);
        assert_eq!(kv.req_stats[2].evictions, 1, "charged to the promoter");
        assert_eq!(kv.classify(K0), KvClass::Cold, "oldest evicted");
        assert_eq!(kv.classify(K0 + 256), KvClass::Warm);
        // A touch refreshes LRU position.
        kv.note_hit(K0 + 256, 1);
        kv.start_promotion(K0, 0, 0, 10_000);
        kv.advance(20_000);
        kv.pop_ready();
        assert_eq!(kv.classify(K0 + 512), KvClass::Cold, "unfreshed evicted");
        assert_eq!(kv.classify(K0 + 256), KvClass::Warm, "touched survives");
    }

    #[test]
    fn prefix_pin_protects_shared_window() {
        let mut c = cfg();
        c.eviction = KvEviction::PrefixPin;
        let mut kv = KvTier::new(c);
        // Shared-prefix block goes warm first (oldest by LRU).
        kv.start_promotion(SHARED_KV_BASE, 0, 0, 0);
        kv.advance(1000);
        kv.pop_ready();
        for i in 0..2u64 {
            kv.start_promotion(K0 + i * 256, 0, 0, 2000 + i * 1000);
            kv.advance(2000 + i * 1000 + 500);
            kv.pop_ready();
        }
        // Capacity 2, three blocks promoted: the per-request block was
        // evicted even though the shared block is older.
        assert_eq!(kv.classify(SHARED_KV_BASE), KvClass::Warm, "pinned");
        assert_eq!(kv.classify(K0), KvClass::Cold, "unpinned LRU evicted");
        assert_eq!(kv.classify(K0 + 256), KvClass::Warm);
    }

    #[test]
    fn busy_tracks_parked_requests() {
        let mut kv = KvTier::new(cfg());
        kv.reserve_requests(3);
        kv.start_promotion(K0, 1, 0, 0);
        kv.merge_wait(K0 + 64, 2, 3);
        let mut busy = Vec::new();
        kv.publish_busy(&mut busy);
        assert_eq!(busy, vec![false, true, true]);
        kv.advance(14);
        kv.pop_ready();
        kv.pop_ready();
        kv.publish_busy(&mut busy);
        assert_eq!(busy, vec![false, false, false]);
        assert_eq!(kv.total.merges, 1);
    }

    #[test]
    fn config_validation() {
        assert!(KvTierConfig::cxl(64, KvEviction::Lru).validate().is_ok());
        let mut c = cfg();
        c.warm_capacity_blocks = 0;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.block_bytes = 100;
        assert!(c.validate().is_err());
        let mut c = cfg();
        c.slow_bytes_per_cycle = 0;
        assert!(c.validate().is_err());
    }
}
