//! COBRRA baseline — contention-aware request-response arbitration
//! (Bagchi et al., TECS 2024), as used in the paper's comparison.
//!
//! COBRRA combines cache bypassing with adaptive request-response
//! arbitration. Following the paper ("we do not consider bypassing for
//! fairness and clarity"), only the arbitration half is reproduced:
//!
//! * request selection is FIFO (COBRRA does not reorder the request
//!   queue);
//! * the storage port adaptively switches between request-priority and
//!   response-priority based on response-queue pressure, with
//!   hysteresis: requests are favoured while the response queue is
//!   comfortable; once it crosses a high watermark responses drain
//!   until a low watermark is reached.
//!
//! This reproduces COBRRA's observable behaviour at the LLC interface —
//! stable under load shifts, but blind to MSHR state, which is exactly
//! the gap LLaMCAT targets.

use llamcat_sim::arb::{ArbiterCtx, PortPreference, RequestArbiter};

/// Adaptive request-response arbitration with hysteresis.
#[derive(Clone)]
pub struct CobrraArbiter {
    /// Fraction of response-queue capacity that triggers drain mode.
    high_frac: f64,
    /// Fraction at which drain mode ends.
    low_frac: f64,
    draining: bool,
}

impl CobrraArbiter {
    pub fn new() -> Self {
        CobrraArbiter {
            high_frac: 0.75,
            low_frac: 0.25,
            draining: false,
        }
    }
}

impl Default for CobrraArbiter {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestArbiter for CobrraArbiter {
    fn select(&mut self, ctx: &ArbiterCtx<'_>) -> Option<usize> {
        if ctx.queue.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    fn wants_mshr_snapshot(&self) -> bool {
        false // FIFO selection; blind to MSHR state by design
    }

    fn port_preference(
        &mut self,
        req_q_len: usize,
        resp_q_len: usize,
        resp_q_cap: usize,
    ) -> Option<PortPreference> {
        let high = (resp_q_cap as f64 * self.high_frac) as usize;
        let low = (resp_q_cap as f64 * self.low_frac) as usize;
        if self.draining {
            if resp_q_len <= low {
                self.draining = false;
            }
        } else if resp_q_len >= high {
            self.draining = true;
        }
        let prefer = if self.draining || (req_q_len == 0 && resp_q_len > 0) {
            PortPreference::Response
        } else {
            PortPreference::Request
        };
        Some(prefer)
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        // `port_preference` mutates only `draining`. While it is clear,
        // the update is idempotent under the queue lengths a skip
        // window guarantees (empty response queue, frozen request
        // queue), so skipping the per-cycle calls changes nothing. A
        // set `draining` flag, however, is cleared *by* those per-cycle
        // calls (resp_q_len <= low — reachable inside a window when the
        // low watermark truncates to 0 on tiny response queues), so we
        // conservatively refuse to skip until it clears.
        if self.draining {
            Some(now)
        } else {
            None
        }
    }

    fn reset(&mut self) {
        self.draining = false;
    }

    fn name(&self) -> &'static str {
        "cobrra"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamcat_sim::mshr::MshrSnapshot;
    use llamcat_sim::types::MemReq;

    #[test]
    fn fifo_request_selection() {
        let mut a = CobrraArbiter::new();
        let snap = MshrSnapshot::default();
        let mut pool = llamcat_sim::pool::ReqPool::default();
        let queue = vec![pool.alloc(MemReq {
            id: 0,
            core: 0,
            request: 0,
            line_addr: 0x40,
            is_write: false,
            issued_at: 0,
        })];
        let ctx = ArbiterCtx {
            queue: &queue,
            pool: &pool,
            mshr: &snap,
            served: &[0],
            kv_busy: &[],
            cycle: 0,
        };
        assert_eq!(a.select(&ctx), Some(0));
    }

    #[test]
    fn hysteresis_engages_and_releases() {
        let mut a = CobrraArbiter::new();
        // Comfortable: requests preferred.
        assert_eq!(a.port_preference(4, 10, 64), Some(PortPreference::Request));
        // Crosses high watermark (48 of 64): drain.
        assert_eq!(a.port_preference(4, 50, 64), Some(PortPreference::Response));
        // Stays draining until low watermark (16).
        assert_eq!(a.port_preference(4, 20, 64), Some(PortPreference::Response));
        assert_eq!(a.port_preference(4, 16, 64), Some(PortPreference::Request));
    }

    #[test]
    fn idle_request_queue_lets_responses_through() {
        let mut a = CobrraArbiter::new();
        assert_eq!(a.port_preference(0, 3, 64), Some(PortPreference::Response));
        assert_eq!(a.port_preference(0, 0, 64), Some(PortPreference::Request));
    }

    #[test]
    fn reset_clears_drain_state() {
        let mut a = CobrraArbiter::new();
        a.port_preference(4, 60, 64);
        a.reset();
        assert_eq!(a.port_preference(4, 20, 64), Some(PortPreference::Request));
    }
}
