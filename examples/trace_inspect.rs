//! Trace tooling walkthrough: enumerate mapper candidates for a decode
//! shape, render the winning dataflow, generate its memory trace, and
//! round-trip it through the binary trace format.
//!
//! ```text
//! cargo run --release --example trace_inspect
//! ```

use llamcat_trace::prelude::*;

fn main() {
    let op = LogitOp::llama3_70b(1024);
    println!("Operator: {op:?}");
    println!(
        "K cache: {} KB, Q: {} KB, scores: {} KB",
        op.k_bytes() / 1024,
        op.q_bytes() / 1024,
        op.score_bytes() / 1024
    );

    println!("\n== Mapper candidates (best first) ==");
    let constraints = MapperConstraints::default();
    for cand in enumerate(&op, &constraints) {
        println!(
            "  {:?} l_tile={} est_reuse_distance={} B est_tb_instrs={}",
            cand.dataflow, cand.l_tile, cand.est_reuse_distance, cand.est_tb_instrs
        );
    }
    let best = best_mapping(&op, &constraints).expect("legal mapping exists");
    println!("\n== Winning mapping ==\n{}", best.mapping.render());

    let cfg = TraceGenConfig::default();
    let (program, meta) = generate(&op, &best.mapping, &cfg);
    println!("== Generated trace ==");
    println!("  thread blocks:   {}", meta.num_blocks);
    println!(
        "  load traffic:    {} MB",
        meta.total_load_bytes / (1 << 20)
    );
    println!("  store traffic:   {} KB", meta.total_store_bytes / 1024);
    println!("  max block size:  {} instructions", meta.max_block_instrs);

    // Persist and reload through the binary format.
    let tf = TraceFile { op, meta, program };
    let mut buf = Vec::new();
    tf.write_binary(&mut buf).expect("serialize");
    println!(
        "\n== Binary trace ==\n  {} bytes ({} per block)",
        buf.len(),
        buf.len() / meta.num_blocks
    );
    let rt = TraceFile::read_binary(&mut buf.as_slice()).expect("deserialize");
    assert_eq!(rt.program.blocks, tf.program.blocks);
    assert_eq!(rt.program.assignment, tf.program.assignment);
    println!(
        "  round-trip OK: {} blocks identical",
        rt.program.num_blocks()
    );
}
