//! Policy explorer: run every cell of the arbitration × throttling
//! matrix on one workload and print the full mechanism table (a
//! do-it-yourself Fig 8). The matrix is assembled through the open
//! [`PolicySpec`] component registry rather than hardcoded enums.
//!
//! ```text
//! cargo run --release --example policy_explorer [seq_len] [70b|405b] [l2_mb]
//! ```

use llamcat::experiment::Model;
use llamcat::spec::{ArbSpec, PolicySpec, ThrottleSpec};
use llamcat_bench::Campaign;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seq_len: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2048);
    let model = match args.get(2).map(|s| s.as_str()) {
        Some("405b") => Model::Llama3_405b,
        _ => Model::Llama3_70b,
    };
    let l2_mb: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(16);

    // The full 4 × 5 matrix from the component name tables.
    let throttles = ["none", "dyncta", "lcs", "dynmg"];
    let arbs = ["fifo", "B", "MA", "BMA", "cobrra"];
    let policies: Vec<PolicySpec> = throttles
        .iter()
        .flat_map(|t| {
            arbs.iter().map(|a| {
                PolicySpec::new(
                    ArbSpec::from_name(a).expect("known arb"),
                    ThrottleSpec::from_name(t).expect("known throttle"),
                )
            })
        })
        .collect();

    println!(
        "Exploring {} policies on {:?} seq={} L2={}MB\n",
        policies.len(),
        model,
        seq_len,
        l2_mb
    );
    let report = Campaign::new("policy-explorer")
        .workload(model.spec())
        .seq_lens([seq_len])
        .l2_sizes_mb([l2_mb])
        .policies(policies)
        .baseline(PolicySpec::unoptimized())
        .run()
        .expect("policy explorer campaign");

    println!(
        "{:<16} {:>11} {:>8} {:>7} {:>8} {:>8} {:>7} {:>11}",
        "policy", "cycles", "speedup", "l2hit", "mshrhit", "entutil", "t_cs", "dram(GB/s)"
    );
    let mut best: Option<(String, u64)> = None;
    for rec in &report.records {
        let r = &rec.report;
        println!(
            "{:<16} {:>11} {:>7.3}x {:>7.3} {:>8.3} {:>8.3} {:>7.3} {:>11.2}",
            r.policy_label,
            r.cycles,
            rec.speedup.expect("baseline set"),
            r.l2_hit_rate,
            r.mshr_hit_rate,
            r.mshr_entry_util,
            r.t_cs,
            r.dram_bandwidth_gbs
        );
        if best.as_ref().is_none_or(|(_, c)| r.cycles < *c) {
            best = Some((r.policy_label.clone(), r.cycles));
        }
    }
    let (name, cycles) = best.expect("at least one policy ran");
    println!("\nbest policy: {name} ({cycles} cycles)");
}
