//! The figure benches fan experiments out with `run_cells` (rayon).
//! Parallel execution must not perturb results: each cell's report has
//! to match a sequential run of the same experiment, in input order,
//! every time — in both simulation step modes, whose JSONL output must
//! additionally be byte-identical to each other.

use llamcat::experiment::{Experiment, Model, Policy};
use llamcat_bench::{run_cells, run_experiments, Cell};
use llamcat_sim::system::StepMode;

fn small_grid() -> Vec<Cell> {
    let policies = [
        Policy::unoptimized(),
        Policy::dynmg(),
        Policy::dynmg_bma(),
        Policy::lcs(),
    ];
    policies
        .iter()
        .map(|&policy| Cell {
            model: Model::Llama3_70b,
            seq_len: 128,
            policy,
            l2_mb: 16,
        })
        .collect()
}

fn experiments(cells: &[Cell], mode: StepMode) -> Vec<Experiment> {
    cells
        .iter()
        .map(|c| {
            Experiment::new(c.model, c.seq_len)
                .policy(c.policy)
                .l2_mb(c.l2_mb)
                .step_mode(mode)
        })
        .collect()
}

#[test]
fn parallel_sweep_matches_sequential_runs() {
    let cells = small_grid();
    for mode in [StepMode::Cycle, StepMode::Skip] {
        let exps = experiments(&cells, mode);
        let parallel = run_experiments(&exps).unwrap();
        let sequential: Vec<_> = exps.iter().map(|e| e.run()).collect();
        for (p, s) in parallel.iter().zip(&sequential) {
            assert_eq!(p.policy_label, s.policy_label, "order not preserved");
            assert_eq!(
                p.cycles, s.cycles,
                "{}: parallel != sequential ({mode:?})",
                p.policy_label
            );
            assert_eq!(
                serde_json::to_string(p).unwrap(),
                serde_json::to_string(s).unwrap()
            );
        }
    }
}

#[test]
fn parallel_sweep_is_repeatable() {
    let cells = small_grid();
    let a = run_cells(&cells);
    let b = run_cells(&cells);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(
            x.cycles, y.cycles,
            "{}: repeat run diverged",
            x.policy_label
        );
    }
}

/// Rayon-parallel sweeps in Skip mode must stream the exact bytes the
/// cycle-accurate sweep streams: same reports, same order.
#[test]
fn parallel_skip_sweep_is_byte_identical_to_cycle_sweep() {
    let cells = small_grid();
    let cycle = run_experiments(&experiments(&cells, StepMode::Cycle)).unwrap();
    let skip = run_experiments(&experiments(&cells, StepMode::Skip)).unwrap();
    let jsonl = |reports: &[llamcat::experiment::RunReport]| {
        reports
            .iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(jsonl(&cycle), jsonl(&skip));
}

/// The same contract over a *mix* campaign: parallel execution is
/// repeatable, and the Skip-mode JSONL — per-request stats, fairness
/// records and all — is byte-identical to the cycle-accurate stream
/// except for the self-describing `step_mode` fields themselves.
#[test]
fn parallel_mix_campaign_is_repeatable_and_mode_equivalent() {
    use llamcat::spec::{MixSpec, PolicySpec};
    use llamcat_bench::Campaign;
    use llamcat_trace::workloads::WorkloadSpec;

    let mix = MixSpec::interleaved()
        .request(WorkloadSpec::llama3_70b(), 128, 0)
        .request(
            WorkloadSpec::PrefillLogit {
                heads: 8,
                group_size: 8,
                head_dim: 128,
                query_tokens: 4,
            },
            128,
            0,
        );
    let campaign = |mode| {
        Campaign::new("mix-determinism")
            .mix(mix.clone())
            .policy(PolicySpec::unoptimized())
            .policy(PolicySpec::dynmg_bma())
            .baseline(PolicySpec::unoptimized())
            .step_mode(mode)
    };

    // Repeatability within each mode.
    for mode in [StepMode::Cycle, StepMode::Skip] {
        let a = campaign(mode).run().unwrap().jsonl();
        let b = campaign(mode).run().unwrap().jsonl();
        assert_eq!(a, b, "mix campaign JSONL diverged across runs ({mode:?})");
    }

    // Cross-mode byte-equality of everything but the mode tag itself.
    let cycle = campaign(StepMode::Cycle).run().unwrap().jsonl();
    let skip = campaign(StepMode::Skip).run().unwrap().jsonl();
    assert_eq!(
        cycle.replace("\"step_mode\":\"Cycle\"", "\"step_mode\":\"Skip\""),
        skip,
        "mix campaign results diverged between step modes"
    );
}
