//! Vector core with multiple instruction windows and runtime thread-block
//! scheduling (Section 3.1 of the paper).
//!
//! Each core owns one vector unit, a private L1, and
//! `num_inst_windows` instruction windows. A thread block is assigned to
//! a window; when the current window cannot make progress (its next
//! instruction waits on memory), the core switches to another window —
//! the warp-scheduler-like latency-hiding mechanism the paper models.
//! Throttling limits the number of *resident* thread blocks (`max_tb`);
//! already-running blocks always drain.

use std::collections::VecDeque;

use crate::config::{CoreConfig, L1Config};
use crate::l1::{L1Cache, L1LoadOutcome};
use crate::prog::{Instr, Program, TbId};
use crate::sched::TbScheduler;
use crate::stats::CoreStats;
use crate::types::{line_of, Addr, CoreId, Cycle, MemReq, MemResp, LINE_BYTES};

#[derive(Debug, Clone, Copy)]
struct Window {
    tb: Option<TbId>,
    pc: usize,
    /// Line loads in flight for this window's thread block.
    outstanding: usize,
}

impl Window {
    const EMPTY: Window = Window {
        tb: None,
        pc: 0,
        outstanding: 0,
    };
}

/// Why the core could not issue this cycle (used for C_mem / C_idle
/// accounting that feeds the throttle controllers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IssueResult {
    Issued,
    AllBlockedOnMemory,
    ComputeBusy,
    NothingResident,
}

/// One simulated vector core.
pub struct VectorCore {
    id: CoreId,
    cfg: CoreConfig,
    l1: L1Cache,
    windows: Vec<Window>,
    /// Throttle input: maximum resident thread blocks.
    pub max_tb: usize,
    compute_busy_until: Cycle,
    next_seq: u64,
    last_issued: usize,
    /// All windows proved memory-blocked; nothing can change until a
    /// fill arrives or a new block is assigned, so issue evaluation is
    /// skipped (pure simulation speed-up, no behavioural effect).
    asleep: bool,
    /// Requests bound for the interconnect (drained by the system).
    pub outbound: VecDeque<MemReq>,
    /// Thread blocks retired this tick (drained by the system, which
    /// maps them to serving requests for completion tracking).
    pub retired: Vec<TbId>,
    pub stats: CoreStats,
}

impl VectorCore {
    pub fn new(id: CoreId, cfg: CoreConfig, l1cfg: L1Config) -> Self {
        VectorCore {
            id,
            cfg,
            l1: L1Cache::new(l1cfg),
            windows: vec![Window::EMPTY; cfg.num_inst_windows],
            max_tb: cfg.num_inst_windows,
            compute_busy_until: 0,
            next_seq: 0,
            last_issued: 0,
            asleep: false,
            outbound: VecDeque::new(),
            retired: Vec::new(),
            stats: CoreStats::default(),
        }
    }

    /// Number of thread blocks currently resident.
    pub fn resident_tbs(&self) -> usize {
        self.windows.iter().filter(|w| w.tb.is_some()).count()
    }

    /// True when the core holds no work at all.
    pub fn is_idle(&self) -> bool {
        self.resident_tbs() == 0 && self.outbound.is_empty() && self.l1.outstanding() == 0
    }

    fn fresh_id(&mut self) -> u64 {
        let id = ((self.id as u64) << 40) | self.next_seq;
        self.next_seq += 1;
        id
    }

    /// Delivers a fill response from the LLC.
    pub fn on_resp(&mut self, resp: MemResp, now: Cycle) {
        self.asleep = false;
        for (window, issued_at) in self.l1.fill(resp.line_addr, now) {
            let w = &mut self.windows[window];
            debug_assert!(w.outstanding > 0, "fill for window with no loads");
            w.outstanding = w.outstanding.saturating_sub(1);
            self.stats.load_latency_sum += now.saturating_sub(issued_at);
            self.stats.load_count += 1;
        }
    }

    /// Advances the core one cycle.
    pub fn tick(&mut self, now: Cycle, program: &Program, sched: &mut TbScheduler) {
        if self.asleep {
            // Fast path: every window is waiting on memory and no fill
            // has arrived since; re-evaluating issue would be a no-op.
            // A new block could only be assigned if a window were free,
            // which contradicts being asleep, unless max_tb just rose —
            // handled below by waking on spare window capacity.
            if self.resident_tbs() >= self.max_tb.min(self.cfg.num_inst_windows) || sched.is_empty()
            {
                self.stats.mem_stall_cycles += 1;
                return;
            }
            self.asleep = false;
        }
        self.retire_finished_blocks();
        self.assign_blocks(sched, now);
        match self.try_issue(now, program) {
            IssueResult::Issued => {
                self.stats.active_cycles += 1;
                self.stats.instrs_issued += 1;
            }
            IssueResult::ComputeBusy => {
                self.stats.active_cycles += 1;
            }
            IssueResult::AllBlockedOnMemory => {
                self.stats.mem_stall_cycles += 1;
                // Sleep only if no window is finished-but-unretired; a
                // retirable window must pick up fresh work next cycle.
                let retirable = self
                    .windows
                    .iter()
                    .any(|w| w.tb.is_some() && w.pc == usize::MAX && w.outstanding == 0);
                self.asleep = !retirable;
            }
            IssueResult::NothingResident => {
                self.stats.idle_cycles += 1;
            }
        }
    }

    fn retire_finished_blocks(&mut self) {
        for w in &mut self.windows {
            if let Some(tb) = w.tb {
                // The pc sentinel usize::MAX marks "past the end, waiting
                // on outstanding loads" — see try_issue.
                if w.pc == usize::MAX && w.outstanding == 0 {
                    w.tb = None;
                    w.pc = 0;
                    self.stats.tbs_completed += 1;
                    self.retired.push(tb);
                }
            }
        }
    }

    fn assign_blocks(&mut self, sched: &mut TbScheduler, now: Cycle) {
        let mut resident = self.resident_tbs();
        while resident < self.max_tb.min(self.cfg.num_inst_windows) {
            let Some(slot) = self.windows.iter().position(|w| w.tb.is_none()) else {
                break;
            };
            // Each window draws from its own chunk of the core's trace
            // (window-strided streams; see `sched`).
            let Some(tb) = sched.next_for(self.id, slot, now) else {
                break;
            };
            self.windows[slot] = Window {
                tb: Some(tb),
                pc: 0,
                outstanding: 0,
            };
            resident += 1;
        }
    }

    fn try_issue(&mut self, now: Cycle, program: &Program) -> IssueResult {
        if self.resident_tbs() == 0 {
            return IssueResult::NothingResident;
        }
        if self.compute_busy_until > now {
            return IssueResult::ComputeBusy;
        }
        let n = self.windows.len();
        let mut any_memory_wait = false;
        for k in 0..n {
            let wi = (self.last_issued + k) % n;
            match self.try_issue_window(wi, now, program) {
                WindowIssue::Issued => {
                    self.last_issued = wi;
                    return IssueResult::Issued;
                }
                WindowIssue::MemoryWait => any_memory_wait = true,
                WindowIssue::Empty => {}
            }
        }
        if any_memory_wait {
            IssueResult::AllBlockedOnMemory
        } else {
            // Resident blocks exist but none is memory-blocked nor
            // issuable: only possible transiently at retire boundaries.
            IssueResult::AllBlockedOnMemory
        }
    }

    fn try_issue_window(&mut self, wi: usize, now: Cycle, program: &Program) -> WindowIssue {
        let w = self.windows[wi];
        let Some(tb) = w.tb else {
            return WindowIssue::Empty;
        };
        if w.pc == usize::MAX {
            // Implicit end-of-block barrier.
            return WindowIssue::MemoryWait;
        }
        let instrs = &program.blocks[tb].instrs;
        let request = program.request_of(tb);
        if w.pc >= instrs.len() {
            // Mark completed-pending-loads; retired next tick.
            self.windows[wi].pc = usize::MAX;
            return if w.outstanding == 0 {
                WindowIssue::Empty
            } else {
                WindowIssue::MemoryWait
            };
        }
        match instrs[w.pc] {
            Instr::Compute { cycles } => {
                self.compute_busy_until = now + cycles as u64;
                self.windows[wi].pc += 1;
                WindowIssue::Issued
            }
            Instr::Barrier => {
                if w.outstanding == 0 {
                    self.windows[wi].pc += 1;
                    WindowIssue::Issued
                } else {
                    WindowIssue::MemoryWait
                }
            }
            Instr::Load { addr, bytes } => {
                if self.issue_load(wi, addr, bytes, now, request) {
                    self.windows[wi].pc += 1;
                    self.stats.loads += 1;
                    WindowIssue::Issued
                } else {
                    WindowIssue::MemoryWait
                }
            }
            Instr::Store { addr, bytes } => {
                self.issue_store(addr, bytes, now, request);
                self.windows[wi].pc += 1;
                self.stats.stores += 1;
                WindowIssue::Issued
            }
        }
    }

    /// Issues every line of a vector load, or nothing (returns false)
    /// when the L1 miss table cannot accept it.
    fn issue_load(&mut self, wi: usize, addr: Addr, bytes: u32, now: Cycle, request: u32) -> bool {
        // First pass: feasibility. All lines must be admissible this
        // cycle, else the whole vector access retries (coalesced issue).
        let mut line = line_of(addr);
        let end = addr + bytes as u64;
        // Dry-run bookkeeping of how many fresh entries we need.
        let mut fresh = 0usize;
        while line < end {
            if !self.l1_can_accept(line, fresh) {
                return false;
            }
            if self.l1_would_allocate(line) {
                fresh += 1;
            }
            line += LINE_BYTES;
        }
        // Second pass: commit.
        let mut line = line_of(addr);
        while line < end {
            self.stats.l1_lookups += 1;
            match self.l1.load(line, wi, now) {
                L1LoadOutcome::Hit => {
                    self.stats.l1_hits += 1;
                }
                L1LoadOutcome::MergedMiss => {
                    self.stats.l1_merges += 1;
                    self.windows[wi].outstanding += 1;
                }
                L1LoadOutcome::NewMiss => {
                    self.windows[wi].outstanding += 1;
                    let id = self.fresh_id();
                    self.outbound.push_back(MemReq {
                        id,
                        core: self.id,
                        request,
                        line_addr: line,
                        is_write: false,
                        issued_at: now,
                    });
                }
                L1LoadOutcome::Blocked => {
                    unreachable!("feasibility pass admitted this line");
                }
            }
            line += LINE_BYTES;
        }
        true
    }

    fn l1_would_allocate(&self, line: Addr) -> bool {
        !self.l1_probe(line) && !self.l1.miss_pending(line)
    }

    fn l1_probe(&self, line: Addr) -> bool {
        // Probe without touching LRU state (feasibility only).
        self.l1_storage_probe(line)
    }

    fn l1_storage_probe(&self, line: Addr) -> bool {
        self.l1.probe(line)
    }

    fn l1_can_accept(&self, line: Addr, fresh_so_far: usize) -> bool {
        if self.l1_probe(line) {
            return true;
        }
        if self.l1.miss_pending(line) {
            return self.l1.has_target_space(line);
        }
        self.l1.outstanding() + fresh_so_far < self.l1.capacity()
    }

    fn issue_store(&mut self, addr: Addr, bytes: u32, now: Cycle, request: u32) {
        let mut line = line_of(addr);
        let end = addr + bytes as u64;
        while line < end {
            self.l1.store(line);
            let id = self.fresh_id();
            self.outbound.push_back(MemReq {
                id,
                core: self.id,
                request,
                line_addr: line,
                is_write: true,
                issued_at: now,
            });
            line += LINE_BYTES;
        }
    }

    /// L1 outstanding misses (for tests).
    pub fn l1_outstanding(&self) -> usize {
        self.l1.outstanding()
    }

    /// Event bound for the fast-forward engine (see
    /// `DESIGN.md`, "The event-bound contract").
    ///
    /// Given the core's post-tick state and `now` = the next cycle to be
    /// executed, returns the first cycle at which `tick` could do
    /// anything beyond the closed-form accrual that [`VectorCore::skip`]
    /// applies. `None` means the core cannot wake itself — only an
    /// external event (a fill via [`VectorCore::on_resp`], or a throttle
    /// decision raising `max_tb`) can change its state, and those arrive
    /// on cycles the system never skips.
    ///
    /// The three quiescent regimes and their per-cycle accruals:
    /// * no resident block and no fetchable work → `idle_cycles`;
    /// * asleep (every window memory-blocked) → `mem_stall_cycles`;
    /// * vector unit busy until `t` → `active_cycles`, event at `t`.
    pub fn next_event(&self, now: Cycle, sched: &TbScheduler) -> Option<Cycle> {
        debug_assert!(self.outbound.is_empty(), "system drains outbound per tick");
        let limit = self.max_tb.min(self.cfg.num_inst_windows);
        if self.resident_tbs() == 0 {
            if sched.has_work_for(self.id, now) {
                return Some(now); // would assign a block next tick
            }
            // Pure idle accrual until a gated request arrives (if ever).
            return sched.next_release_for(self.id, now);
        }
        if self.asleep {
            // tick()'s fast path re-checks this exact condition; if it
            // fails the core wakes and re-assigns next tick.
            if self.resident_tbs() >= limit || sched.is_empty() {
                return None; // pure C_mem accrual
            }
            if sched.has_work_for(self.id, now) {
                return Some(now);
            }
            // Every fetchable front is gated: the woken tick would only
            // re-accrue C_mem and fall back asleep until the earliest
            // release (stat-identical to staying asleep).
            return sched.next_release_for(self.id, now);
        }
        // A finished-but-unretired window retires next tick.
        if self
            .windows
            .iter()
            .any(|w| w.tb.is_some() && w.pc == usize::MAX && w.outstanding == 0)
        {
            return Some(now);
        }
        // Capacity plus available work: a block would be assigned.
        let release = if self.resident_tbs() < limit {
            if sched.has_work_for(self.id, now) {
                return Some(now);
            }
            // Assignment happens even while the vector unit is busy, so
            // a gated arrival bounds the quiescent window too.
            sched.next_release_for(self.id, now)
        } else {
            None
        };
        if self.compute_busy_until > now {
            // Pure active-cycle accrual until the vector unit frees (or
            // a gated request arrives and would be assigned).
            let busy = self.compute_busy_until;
            return Some(release.map_or(busy, |r| r.min(busy)));
        }
        Some(now)
    }

    /// Fast-forwards `cycles` quiescent cycles, accruing exactly the
    /// statistics the per-cycle [`VectorCore::tick`] would have. Callers
    /// must have validated the window against [`VectorCore::next_event`].
    pub fn skip(&mut self, now: Cycle, cycles: u64) {
        if cycles == 0 {
            return;
        }
        if self.resident_tbs() == 0 {
            self.stats.idle_cycles += cycles;
        } else if self.asleep {
            self.stats.mem_stall_cycles += cycles;
        } else {
            debug_assert!(
                self.compute_busy_until >= now + cycles,
                "skip window exceeds the compute-busy bound"
            );
            self.stats.active_cycles += cycles;
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WindowIssue {
    Issued,
    MemoryWait,
    Empty,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::prog::ThreadBlock;

    fn setup(blocks: Vec<ThreadBlock>) -> (VectorCore, Program, TbScheduler) {
        let cfg = SystemConfig::table5();
        let program = Program::round_robin(blocks, 1);
        let sched = TbScheduler::new(&program, 1, 4);
        let core = VectorCore::new(0, cfg.core, cfg.l1);
        (core, program, sched)
    }

    fn load(addr: Addr) -> Instr {
        Instr::Load { addr, bytes: 128 }
    }

    #[test]
    fn executes_compute_only_block() {
        let tb = ThreadBlock {
            instrs: vec![Instr::Compute { cycles: 3 }, Instr::Compute { cycles: 2 }],
        };
        let (mut core, program, mut sched) = setup(vec![tb]);
        let mut now = 0;
        while core.stats.tbs_completed == 0 && now < 100 {
            core.tick(now, &program, &mut sched);
            now += 1;
        }
        assert_eq!(core.stats.tbs_completed, 1);
        assert!(core.is_idle());
        assert_eq!(core.stats.instrs_issued, 2);
    }

    #[test]
    fn load_generates_line_requests_and_waits() {
        let tb = ThreadBlock {
            instrs: vec![load(0), Instr::Barrier],
        };
        let (mut core, program, mut sched) = setup(vec![tb]);
        for now in 0..5 {
            core.tick(now, &program, &mut sched);
        }
        // 128 B vector load = 2 line requests.
        assert_eq!(core.outbound.len(), 2);
        assert_eq!(core.stats.loads, 1);
        assert_eq!(core.stats.tbs_completed, 0, "barrier holds completion");
        assert!(
            core.stats.mem_stall_cycles > 0,
            "C_mem accrues while waiting"
        );
        // Respond to both lines.
        let r1 = core.outbound.pop_front().unwrap();
        let r2 = core.outbound.pop_front().unwrap();
        core.on_resp(
            MemResp {
                id: r1.id,
                core: 0,
                line_addr: r1.line_addr,
            },
            10,
        );
        core.on_resp(
            MemResp {
                id: r2.id,
                core: 0,
                line_addr: r2.line_addr,
            },
            11,
        );
        for now in 12..16 {
            core.tick(now, &program, &mut sched);
        }
        assert_eq!(core.stats.tbs_completed, 1);
        assert_eq!(core.stats.load_count, 2);
    }

    #[test]
    fn window_switching_hides_latency() {
        // Two blocks, each: load + barrier. With 4 windows the core
        // issues block 2's load while block 1 waits.
        let mk = |addr| ThreadBlock {
            instrs: vec![load(addr), Instr::Barrier],
        };
        let (mut core, program, mut sched) = setup(vec![mk(0), mk(4096)]);
        for now in 0..4 {
            core.tick(now, &program, &mut sched);
        }
        // Both blocks' loads are in flight concurrently.
        assert_eq!(core.outbound.len(), 4);
        assert_eq!(core.resident_tbs(), 2);
    }

    #[test]
    fn max_tb_limits_residency() {
        let mk = |addr| ThreadBlock {
            instrs: vec![load(addr), Instr::Barrier],
        };
        let blocks: Vec<_> = (0..6).map(|i| mk(i * 4096)).collect();
        let (mut core, program, mut sched) = setup(blocks);
        core.max_tb = 1;
        for now in 0..3 {
            core.tick(now, &program, &mut sched);
        }
        assert_eq!(core.resident_tbs(), 1, "throttled to one block");
        assert_eq!(core.outbound.len(), 2, "only block 0's lines issued");
    }

    #[test]
    fn store_is_posted() {
        let tb = ThreadBlock {
            instrs: vec![Instr::Store {
                addr: 64,
                bytes: 64,
            }],
        };
        let (mut core, program, mut sched) = setup(vec![tb]);
        for now in 0..4 {
            core.tick(now, &program, &mut sched);
        }
        assert_eq!(core.stats.stores, 1);
        let req = core.outbound.pop_front().unwrap();
        assert!(req.is_write);
        assert_eq!(core.stats.tbs_completed, 1, "no waiting on stores");
    }

    #[test]
    fn idle_cycles_accrue_without_work() {
        let (mut core, program, mut sched) = setup(vec![]);
        for now in 0..10 {
            core.tick(now, &program, &mut sched);
        }
        assert_eq!(core.stats.idle_cycles, 10);
    }

    #[test]
    fn l1_hit_avoids_traffic() {
        let tb = ThreadBlock {
            instrs: vec![load(0), Instr::Barrier, load(0), Instr::Barrier],
        };
        let (mut core, program, mut sched) = setup(vec![tb]);
        for now in 0..5 {
            core.tick(now, &program, &mut sched);
        }
        let reqs: Vec<_> = core.outbound.drain(..).collect();
        assert_eq!(reqs.len(), 2);
        for (i, r) in reqs.iter().enumerate() {
            core.on_resp(
                MemResp {
                    id: r.id,
                    core: 0,
                    line_addr: r.line_addr,
                },
                6 + i as u64,
            );
        }
        for now in 8..20 {
            core.tick(now, &program, &mut sched);
        }
        assert_eq!(core.stats.tbs_completed, 1);
        assert_eq!(core.outbound.len(), 0, "second load hits in L1");
        assert_eq!(core.stats.l1_hits, 2);
    }
}
