//! LLC slice: request queue, arbiter, tag/MSHR pipeline, response queue
//! and the shared storage port (Fig 4 of the paper).
//!
//! Flow of a request (numbers match Fig 4):
//! 1. it arrives from the interconnect into the request queue;
//! 2. the arbiter picks a request and the tag pipeline looks it up
//!    (`hit_latency` cycles); a hit returns to the core after
//!    `data_latency` further cycles;
//! 3. a miss consults the MSHR after `mshr_latency` more cycles: merge,
//!    allocate + fetch from DRAM, or — if neither dimension has space —
//!    stall the whole pipeline (no new arbitration until space frees);
//! 4. (and 4'.) a DRAM fill frees the MSHR entry and forwards data
//!    directly to the waiting cores, while a copy enters the response
//!    queue;
//! 5. when a response dequeues it is written into cache storage
//!    (alloc-on-fill, write-allocate), contending with the request path
//!    for the storage port under the configured request-response policy.
//!
//! Data-oriented hot path (see `DESIGN.md`, "Hot path anatomy"): a
//! request lives in the [`ReqPool`] arena from core issue to
//! hit/MSHR-resolution, and every queue here (`ingress`, `req_q`, the
//! tag and MSHR pipes) moves only its 4-byte [`ReqHandle`]. The slice
//! is generic over its arbiter so the closed-world policy set
//! monomorphizes (no virtual dispatch per tick); `Box<dyn
//! RequestArbiter>` remains the default for open-world callers.

use std::collections::VecDeque;

use crate::arb::{ArbiterCtx, PortPreference, RequestArbiter};
use crate::cache::{InsertPolicy, SetAssocCache};
use crate::config::{L2Config, ReqRespPolicy};
use crate::mshr::{MshrFile, MshrOutcome, MshrSnapshot, MshrTarget};
use crate::pool::{ReqHandle, ReqPool};
use crate::stats::{RequestLlcStats, SliceStats};
use crate::types::{Addr, Cycle, MemResp, SliceId};

/// A request in the tag or MSHR pipeline stage.
#[derive(Debug, Clone, Copy)]
struct PipeEntry {
    h: ReqHandle,
    ready_at: Cycle,
}

/// A response scheduled to leave the slice towards a core.
#[derive(Debug, Clone, Copy)]
pub struct OutboundResp {
    pub at: Cycle,
    pub resp: MemResp,
}

/// A pending DRAM fill that could not yet be processed (response queue
/// full).
#[derive(Debug, Clone, Copy)]
struct PendingFill {
    line_addr: Addr,
}

/// A line waiting in the response queue for its storage write.
#[derive(Debug, Clone, Copy)]
struct RespQEntry {
    line_addr: Addr,
    dirty: bool,
}

/// Why the pipeline is stalled, if it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StallKind {
    None,
    EntryFull,
    TargetFull,
}

/// One slice of the shared L2.
#[derive(Clone)]
pub struct LlcSlice<A: RequestArbiter = Box<dyn RequestArbiter>> {
    id: SliceId,
    cfg: L2Config,
    storage: SetAssocCache,
    mshr: MshrFile,
    snapshot: MshrSnapshot,
    arbiter: A,

    /// Requests delivered by the NoC but not yet admitted to the request
    /// queue (models wires/ingress buffering when the queue is full).
    ingress: VecDeque<ReqHandle>,
    /// FIFO-ordered request-queue handles (index 0 oldest). Arbitration
    /// removes from arbitrary positions; `Vec::remove` keeps the order
    /// stable and only shifts 4-byte handles.
    req_q: Vec<ReqHandle>,
    resp_q: VecDeque<RespQEntry>,
    tag_pipe: VecDeque<PipeEntry>,
    mshr_pipe: VecDeque<PipeEntry>,
    pending_fills: VecDeque<PendingFill>,
    /// Reads to dispatch to DRAM as `(line, serving request)` (drained
    /// by the system; the request tag lets the KV tier attribute and
    /// gate KV traffic at the dispatch boundary).
    pub dram_reads: VecDeque<(Addr, u32)>,
    /// Dirty victims to write back to DRAM (drained by the system).
    pub dram_writes: VecDeque<Addr>,
    /// Responses on their way to cores (drained by the system into the NoC).
    pub outbound: VecDeque<OutboundResp>,

    /// Per-core requests served since operator start (Fig 4 `cnt`).
    served: Vec<u64>,
    stall: StallKind,
    /// A standing stall's registration retry is guaranteed to fail
    /// again until a fill mutates the MSHR file (nothing else frees
    /// entries or targets), so the retry is skipped and the stall
    /// counters re-accrued directly. Cleared by `process_fill`.
    stall_sticky: bool,
    /// Data array busy serving a hit readout until this cycle.
    data_port_free_at: Cycle,
    pub stats: SliceStats,
    /// Per-serving-request attribution, indexed by request id (grown on
    /// demand; solo traces only ever touch index 0). Every increment
    /// mirrors an untagged `stats` increment at the same pipeline point.
    pub request_stats: Vec<RequestLlcStats>,
    /// Per-request "KV mid-promotion" view, republished by the system
    /// from the KV tier whenever it changes (empty without a tier).
    /// Read-only input to KV-aware arbiters via [`ArbiterCtx`].
    pub kv_busy: Vec<bool>,
}

impl<A: RequestArbiter> LlcSlice<A> {
    pub fn new(id: SliceId, cfg: L2Config, num_cores: usize, arbiter: A) -> Self {
        let sets = cfg.sets_per_slice();
        let index_shift = (cfg.num_slices as u64).trailing_zeros();
        LlcSlice {
            id,
            cfg,
            storage: SetAssocCache::new(sets, cfg.associativity, index_shift),
            mshr: MshrFile::new(cfg.mshr_entries, cfg.mshr_targets),
            snapshot: MshrSnapshot::default(),
            arbiter,
            // Preallocated to their realistic high-water marks so the
            // steady-state tick loop never grows a ring (pinned by
            // `tests/alloc_regression.rs`); they still grow if a
            // pathological configuration exceeds these. Ingress models
            // unbounded wires and can absorb most of the machine's
            // in-flight window on one hot slice — the system resizes it
            // to the configuration-derived bound via
            // [`LlcSlice::reserve_ingress`].
            ingress: VecDeque::with_capacity(64),
            req_q: Vec::with_capacity(cfg.req_q_size),
            resp_q: VecDeque::with_capacity(cfg.resp_q_size),
            tag_pipe: VecDeque::with_capacity(64),
            mshr_pipe: VecDeque::with_capacity(64),
            pending_fills: VecDeque::with_capacity(64),
            dram_reads: VecDeque::with_capacity(256),
            dram_writes: VecDeque::with_capacity(256),
            outbound: VecDeque::with_capacity(64),
            served: vec![0; num_cores],
            stall: StallKind::None,
            stall_sticky: false,
            data_port_free_at: 0,
            stats: SliceStats::default(),
            request_stats: Vec::new(),
            kv_busy: Vec::new(),
        }
    }

    /// The attribution slot of serving request `r`, grown on demand.
    #[inline]
    fn rstat(&mut self, r: u32) -> &mut RequestLlcStats {
        let idx = r as usize;
        if idx >= self.request_stats.len() {
            self.request_stats
                .resize(idx + 1, RequestLlcStats::default());
        }
        &mut self.request_stats[idx]
    }

    /// Preallocates the ingress ring for `capacity` buffered requests
    /// (the system passes its whole-machine in-flight bound, so a hot
    /// slice absorbing most of the window never grows the ring
    /// mid-run).
    pub fn reserve_ingress(&mut self, capacity: usize) {
        self.ingress
            .reserve(capacity.saturating_sub(self.ingress.capacity()));
    }

    /// Delivers a request from the interconnect.
    pub fn deliver(&mut self, h: ReqHandle) {
        self.ingress.push_back(h);
    }

    /// Delivers a completed DRAM fill.
    pub fn deliver_fill(&mut self, line_addr: Addr) {
        self.pending_fills.push_back(PendingFill { line_addr });
    }

    /// Per-core served counters (progress counters of the paper).
    pub fn served(&self) -> &[u64] {
        &self.served
    }

    /// Resets progress counters and arbiter history at operator start.
    pub fn start_operator(&mut self) {
        self.served.iter_mut().for_each(|c| *c = 0);
        self.arbiter.reset();
    }

    /// Swaps in a fresh arbiter, resetting it exactly as slice
    /// construction plus [`LlcSlice::start_operator`] would. Used by
    /// the snapshot layer to fork one pre-tick base system per policy
    /// cell: the forked slice is byte-identical to one built with this
    /// arbiter from scratch.
    pub fn replace_arbiter(&mut self, arbiter: A) {
        self.arbiter = arbiter;
        self.served.iter_mut().for_each(|c| *c = 0);
        self.arbiter.reset();
    }

    /// True when no work of any kind remains in the slice.
    pub fn is_idle(&self) -> bool {
        self.ingress.is_empty()
            && self.req_q.is_empty()
            && self.resp_q.is_empty()
            && self.tag_pipe.is_empty()
            && self.mshr_pipe.is_empty()
            && self.pending_fills.is_empty()
            && self.dram_reads.is_empty()
            && self.dram_writes.is_empty()
            && self.outbound.is_empty()
            && self.mshr.occupancy() == 0
    }

    /// Advances the slice by one core cycle.
    pub fn tick(&mut self, now: Cycle, pool: &mut ReqPool) {
        // Occupancy statistics (integrals for mean occupancy).
        self.stats.mshr_occupancy_integral += self.mshr.occupancy() as u64;
        self.stats.req_q_occupancy_integral += self.req_q.len() as u64;
        self.stats.resp_q_occupancy_integral += self.resp_q.len() as u64;

        // (4)/(4') Process at most one DRAM fill per cycle.
        self.process_fill(now, pool);

        // MSHR pipeline head: resolves misses, may stall the slice.
        self.advance_mshr_pipe(now, pool);

        // Tag pipeline: classify hits and misses.
        self.advance_tag_pipe(now, pool);

        // Storage port: response path vs request path.
        self.storage_port(now, pool);

        // Admit ingress traffic into the request queue.
        self.drain_ingress();

        self.arbiter.tick();
    }

    fn process_fill(&mut self, now: Cycle, pool: &ReqPool) {
        let Some(&PendingFill { line_addr }) = self.pending_fills.front() else {
            return;
        };
        if self.resp_q.len() >= self.cfg.resp_q_size {
            return; // response queue full: fill waits, MSHR stays occupied
        }
        self.pending_fills.pop_front();
        self.stall_sticky = false;
        let mut dirty = false;
        for t in self.mshr.complete(line_addr).unwrap_or(&[]) {
            if t.is_write {
                dirty = true;
            } else {
                // (4') direct forward to the requesting core.
                self.outbound.push_back(OutboundResp {
                    at: now,
                    resp: MemResp {
                        id: t.req_id,
                        core: t.core,
                        line_addr,
                    },
                });
            }
        }
        // The storage write happens when this response wins the port —
        // at least a cycle away; warm its set row now.
        self.storage.prefetch(line_addr);
        self.resp_q.push_back(RespQEntry { line_addr, dirty });
        self.arbiter.note_fill(line_addr);
        // Replay: misses queued behind the MSHR stage for this very line
        // (typically a request that stalled on a full target list) go
        // back through the tag pipeline — the line is arriving, so they
        // will hit in storage instead of refetching from DRAM. The pipe
        // is partitioned by rotating it in place (pop each entry once,
        // re-push the keepers), which preserves relative order without
        // the per-fill `VecDeque` rebuild the seed allocated here.
        if self
            .mshr_pipe
            .iter()
            .any(|p| pool.get(p.h).line_addr == line_addr)
        {
            for _ in 0..self.mshr_pipe.len() {
                let entry = self.mshr_pipe.pop_front().expect("iterating pipe length");
                if pool.get(entry.h).line_addr == line_addr {
                    self.tag_pipe.push_back(PipeEntry {
                        h: entry.h,
                        ready_at: now + self.cfg.hit_latency,
                    });
                } else {
                    self.mshr_pipe.push_back(entry);
                }
            }
        }
    }

    fn advance_mshr_pipe(&mut self, now: Cycle, pool: &mut ReqPool) {
        let sticky = self.stall_sticky;
        let prior = self.stall;
        self.stall = StallKind::None;
        let Some(head) = self.mshr_pipe.front().copied() else {
            return;
        };
        if head.ready_at > now {
            return;
        }
        if sticky {
            // No fill touched the MSHR since the last failed
            // registration: the retry would fail identically. Re-accrue
            // the same stall counters without the lookup.
            let request = pool.get(head.h).request;
            self.stall = prior;
            self.stats.stall_cycles += 1;
            match prior {
                StallKind::EntryFull => self.stats.stall_entry_full += 1,
                StallKind::TargetFull => self.stats.stall_target_full += 1,
                StallKind::None => unreachable!("sticky stall without a kind"),
            }
            self.rstat(request).stall_cycles += 1;
            return;
        }
        let req = *pool.get(head.h);
        let target = MshrTarget {
            req_id: req.id,
            core: req.core,
            is_write: req.is_write,
        };
        match self.mshr.register(req.line_addr, target) {
            MshrOutcome::Merged => {
                self.mshr_pipe.pop_front();
                pool.release(head.h);
                self.stats.mshr_merges += 1;
                self.stats.misses += 1;
                self.stats.lookups += 1;
                let r = self.rstat(req.request);
                r.mshr_merges += 1;
                r.misses += 1;
                r.lookups += 1;
            }
            MshrOutcome::Allocated => {
                self.mshr_pipe.pop_front();
                pool.release(head.h);
                self.stats.mshr_allocs += 1;
                self.stats.misses += 1;
                self.stats.lookups += 1;
                let r = self.rstat(req.request);
                r.mshr_allocs += 1;
                r.misses += 1;
                r.lookups += 1;
                self.dram_reads.push_back((req.line_addr, req.request));
            }
            MshrOutcome::FullEntries => {
                self.stall = StallKind::EntryFull;
                self.stall_sticky = true;
                self.stats.stall_cycles += 1;
                self.stats.stall_entry_full += 1;
                self.rstat(req.request).stall_cycles += 1;
            }
            MshrOutcome::FullTargets => {
                self.stall = StallKind::TargetFull;
                self.stall_sticky = true;
                self.stats.stall_cycles += 1;
                self.stats.stall_target_full += 1;
                self.rstat(req.request).stall_cycles += 1;
            }
        }
    }

    fn advance_tag_pipe(&mut self, now: Cycle, pool: &mut ReqPool) {
        let Some(head) = self.tag_pipe.front().copied() else {
            return;
        };
        if head.ready_at > now {
            return;
        }
        let req = *pool.get(head.h);
        // A hit readout needs the data port; while it is busy the tag
        // pipe backs up (hit bandwidth is a real, scarce resource).
        // Probe so misses are not blocked by port availability — but
        // only when the port is actually busy (the port-free common
        // case skips the tag scan entirely; `access` below decides).
        if now < self.data_port_free_at && !req.is_write && self.storage.probe(req.line_addr) {
            // The cache cannot accept this hit: a stall in the paper's
            // sense (t_cs counts every cycle the cache pipeline is
            // blocked, whatever the blocked resource is).
            self.stats.stall_cycles += 1;
            self.stats.stall_data_port += 1;
            self.rstat(req.request).stall_cycles += 1;
            return;
        }
        self.tag_pipe.pop_front();
        let hit = self.storage.access(req.line_addr, req.is_write);
        if hit {
            pool.release(head.h);
            self.stats.hits += 1;
            self.stats.lookups += 1;
            let r = self.rstat(req.request);
            r.hits += 1;
            r.lookups += 1;
            self.arbiter.note_hit(req.line_addr);
            if !req.is_write {
                self.data_port_free_at = now + self.cfg.hit_occupancy;
                self.outbound.push_back(OutboundResp {
                    at: now + self.cfg.data_latency,
                    resp: MemResp {
                        id: req.id,
                        core: req.core,
                        line_addr: req.line_addr,
                    },
                });
            }
        } else {
            self.mshr_pipe.push_back(PipeEntry {
                h: head.h,
                ready_at: now + self.cfg.mshr_latency,
            });
        }
    }

    fn storage_port(&mut self, now: Cycle, pool: &mut ReqPool) {
        let prefer = self
            .arbiter
            .port_preference(self.req_q.len(), self.resp_q.len(), self.cfg.resp_q_size)
            .unwrap_or(match self.cfg.req_resp {
                ReqRespPolicy::ResponseFirst => {
                    if self.resp_q.is_empty() {
                        PortPreference::Request
                    } else {
                        PortPreference::Response
                    }
                }
                ReqRespPolicy::RequestFirst => {
                    // Requests first; when the response queue is full,
                    // alternate (here: response on even cycles). With no
                    // requests waiting, drain responses.
                    let alternate =
                        self.resp_q.len() >= self.cfg.resp_q_size && now.is_multiple_of(2);
                    if alternate || (self.req_q.is_empty() && !self.resp_q.is_empty()) {
                        PortPreference::Response
                    } else {
                        PortPreference::Request
                    }
                }
            });
        match prefer {
            PortPreference::Response => {
                if self.pop_response(now) {
                    self.stats.resp_port_cycles += 1;
                } else {
                    self.try_arbitrate(now, pool);
                }
            }
            PortPreference::Request => {
                if !self.try_arbitrate(now, pool) && self.pop_response(now) {
                    self.stats.resp_port_cycles += 1;
                }
            }
        }
    }

    /// (5) Response dequeue: write the line into storage.
    fn pop_response(&mut self, _now: Cycle) -> bool {
        let Some(entry) = self.resp_q.pop_front() else {
            return false;
        };
        self.stats.fills += 1;
        if let Some(victim) = self
            .storage
            .insert(entry.line_addr, entry.dirty, InsertPolicy::Mru)
        {
            if victim.dirty {
                self.stats.writebacks += 1;
                self.dram_writes.push_back(victim.line_addr);
            }
        }
        true
    }

    /// (2) Consult the arbiter and start a tag lookup. Returns true if a
    /// request entered the pipeline.
    fn try_arbitrate(&mut self, now: Cycle, pool: &ReqPool) -> bool {
        if self.stall != StallKind::None {
            return false; // MSHR reservation failure stalls the pipeline
        }
        if self.req_q.is_empty() {
            return false;
        }
        if self.arbiter.wants_mshr_snapshot() {
            self.mshr.snapshot_into(&mut self.snapshot);
        }
        let ctx = ArbiterCtx {
            queue: &self.req_q,
            pool,
            mshr: &self.snapshot,
            served: &self.served,
            kv_busy: &self.kv_busy,
            cycle: now,
        };
        let Some(idx) = self.arbiter.select(&ctx) else {
            return false;
        };
        debug_assert!(idx < self.req_q.len(), "arbiter returned invalid index");
        let chosen = self.req_q.remove(idx);
        self.served[pool.get(chosen).core] += 1;
        self.stats.req_port_cycles += 1;
        // The tag scan runs `hit_latency` simulated cycles from now —
        // ideal distance to hide the host-memory latency of the set row.
        self.storage.prefetch(pool.get(chosen).line_addr);
        self.tag_pipe.push_back(PipeEntry {
            h: chosen,
            ready_at: now + self.cfg.hit_latency,
        });
        true
    }

    fn drain_ingress(&mut self) {
        while self.req_q.len() < self.cfg.req_q_size {
            let Some(h) = self.ingress.pop_front() else {
                return;
            };
            self.req_q.push(h);
        }
        if !self.ingress.is_empty() {
            self.stats.req_q_rejects += 1;
        }
    }

    /// Whether the MSHR-pipeline head is ready but guaranteed to fail
    /// registration — the stall regime, where every tick accrues stall
    /// counters without changing state (only a fill can clear it, and
    /// fills are never skipped over).
    fn head_stalled(&self, now: Cycle, pool: &ReqPool) -> Option<MshrOutcome> {
        let head = self.mshr_pipe.front()?;
        if head.ready_at > now {
            return None;
        }
        match self.mshr.probe(pool.get(head.h).line_addr) {
            o @ (MshrOutcome::FullEntries | MshrOutcome::FullTargets) => Some(o),
            _ => None,
        }
    }

    /// Whether the tag-pipeline head is ready, would hit, and is blocked
    /// on the busy data port — the other per-cycle stall regime, which
    /// resolves by itself when the port frees.
    fn head_port_blocked(&self, now: Cycle, pool: &ReqPool) -> bool {
        self.tag_pipe.front().is_some_and(|head| {
            let req = pool.get(head.h);
            head.ready_at <= now
                && !req.is_write
                && now < self.data_port_free_at
                && self.storage.probe(req.line_addr)
        })
    }

    /// Event bound for the fast-forward engine (see `DESIGN.md`, "The
    /// event-bound contract").
    ///
    /// Returns the first cycle `>= now` at which `tick` could do
    /// anything beyond the closed-form accrual applied by
    /// [`LlcSlice::skip`]: occupancy integrals, stall counters for a
    /// blocked pipeline head, ingress rejects, and arbiter aging.
    /// `None` means only external events (NoC deliveries, DRAM fills —
    /// both of which the system never skips over) can change the slice.
    pub fn next_event(&self, now: Cycle, pool: &ReqPool) -> Option<Cycle> {
        debug_assert!(self.outbound.is_empty(), "system drains outbound per tick");
        // Anything in these queues is acted on (or retried) every cycle.
        if !self.pending_fills.is_empty()
            || !self.resp_q.is_empty()
            || !self.dram_reads.is_empty()
            || !self.dram_writes.is_empty()
        {
            return Some(now);
        }
        let mut ev: Option<Cycle> = None;
        let mut merge = |at: Cycle| {
            ev = Some(ev.map_or(at, |e: Cycle| e.min(at)));
        };
        if let Some(head) = self.tag_pipe.front() {
            if head.ready_at > now {
                merge(head.ready_at);
            } else if self.head_port_blocked(now, pool) {
                // Pure stall accrual until the data port frees.
                merge(self.data_port_free_at);
            } else {
                return Some(now); // head advances next tick
            }
        }
        if let Some(head) = self.mshr_pipe.front() {
            if head.ready_at > now {
                merge(head.ready_at);
            } else if self.head_stalled(now, pool).is_some() {
                // Stall accrual; only a fill (an event) can clear it.
            } else {
                return Some(now); // registration succeeds next tick
            }
        }
        if !self.req_q.is_empty() && self.head_stalled(now, pool).is_none() {
            return Some(now); // arbitration can admit a request
        }
        if !self.ingress.is_empty() && self.req_q.len() < self.cfg.req_q_size {
            return Some(now); // ingress drains into the request queue
        }
        if let Some(at) = self.arbiter.next_event(now) {
            if at <= now {
                return Some(now);
            }
            merge(at);
        }
        ev
    }

    /// Fast-forwards `cycles` quiescent cycles, accruing exactly what
    /// the per-cycle [`LlcSlice::tick`] would have: occupancy
    /// integrals, MSHR-reservation stall counters, data-port stall
    /// counters, ingress rejects, and arbiter aging. Callers must have
    /// validated the window against [`LlcSlice::next_event`].
    pub fn skip(&mut self, now: Cycle, cycles: u64, pool: &ReqPool) {
        if cycles == 0 {
            return;
        }
        self.stats.mshr_occupancy_integral += self.mshr.occupancy() as u64 * cycles;
        self.stats.req_q_occupancy_integral += self.req_q.len() as u64 * cycles;
        self.stats.resp_q_occupancy_integral += self.resp_q.len() as u64 * cycles;
        // Stall attribution: a stalled pipeline head cannot change
        // during a validated skip window (registration keeps failing,
        // and only a fill — never skipped over — can unblock it), so
        // every stalled cycle charges the same request the per-cycle
        // tick would have charged.
        if let Some(outcome) = self.head_stalled(now, pool) {
            let head = self.mshr_pipe.front().expect("stalled head");
            let request = pool.get(head.h).request;
            self.stats.stall_cycles += cycles;
            match outcome {
                MshrOutcome::FullEntries => self.stats.stall_entry_full += cycles,
                MshrOutcome::FullTargets => self.stats.stall_target_full += cycles,
                _ => unreachable!("head_stalled returns only Full outcomes"),
            }
            self.rstat(request).stall_cycles += cycles;
        }
        if self.head_port_blocked(now, pool) {
            let head = self.tag_pipe.front().expect("blocked head");
            let request = pool.get(head.h).request;
            self.stats.stall_cycles += cycles;
            self.stats.stall_data_port += cycles;
            self.rstat(request).stall_cycles += cycles;
        }
        if !self.ingress.is_empty() {
            debug_assert!(self.req_q.len() >= self.cfg.req_q_size);
            self.stats.req_q_rejects += cycles;
        }
        self.arbiter.skip(cycles);
    }

    /// Slice id.
    pub fn id(&self) -> SliceId {
        self.id
    }

    /// Name of the installed arbiter policy.
    pub fn arbiter_name(&self) -> &'static str {
        self.arbiter.name()
    }

    /// Current MSHR occupancy (for tests and debugging).
    pub fn mshr_occupancy(&self) -> usize {
        self.mshr.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arb::FifoArbiter;
    use crate::config::SystemConfig;
    use crate::types::{MemReq, LINE_BYTES};

    fn slice_cfg() -> L2Config {
        SystemConfig::table5().l2
    }

    fn mk_slice() -> (LlcSlice<FifoArbiter>, ReqPool) {
        (
            LlcSlice::new(0, slice_cfg(), 4, FifoArbiter),
            ReqPool::default(),
        )
    }

    fn read(pool: &mut ReqPool, id: u64, core: usize, line: u64) -> ReqHandle {
        pool.alloc(MemReq {
            id,
            core,
            request: 0,
            line_addr: line * LINE_BYTES * 8, // keep slice bits constant
            is_write: false,
            issued_at: 0,
        })
    }

    fn run(
        slice: &mut LlcSlice<FifoArbiter>,
        pool: &mut ReqPool,
        from: Cycle,
        cycles: Cycle,
    ) -> Cycle {
        for c in from..from + cycles {
            slice.tick(c, pool);
        }
        from + cycles
    }

    #[test]
    fn miss_allocates_and_dispatches_dram_read() {
        let (mut s, mut pool) = mk_slice();
        let h = read(&mut pool, 1, 0, 1);
        s.deliver(h);
        run(&mut s, &mut pool, 0, 20);
        assert_eq!(s.stats.misses, 1);
        assert_eq!(s.stats.mshr_allocs, 1);
        assert_eq!(s.dram_reads.len(), 1);
        assert_eq!(s.mshr_occupancy(), 1);
        assert_eq!(pool.live(), 0, "handle recycled at MSHR registration");
    }

    #[test]
    fn fill_forwards_directly_and_installs_line() {
        let (mut s, mut pool) = mk_slice();
        let r = read(&mut pool, 7, 2, 3);
        s.deliver(r);
        let now = run(&mut s, &mut pool, 0, 20);
        let (line, _) = s.dram_reads.pop_front().unwrap();
        s.deliver_fill(line);
        let now = run(&mut s, &mut pool, now, 5);
        // Direct forward (4') produced a response for core 2.
        let resp = s.outbound.pop_back().expect("forwarded response");
        assert_eq!(resp.resp.core, 2);
        assert_eq!(resp.resp.id, 7);
        assert_eq!(s.mshr_occupancy(), 0, "MSHR freed at fill");
        // The line is now resident: a second read hits.
        let now = run(&mut s, &mut pool, now, 5);
        let h = read(&mut pool, 8, 1, 3);
        s.deliver(h);
        run(&mut s, &mut pool, now, 40);
        assert_eq!(s.stats.hits, 1);
        assert_eq!(s.stats.fills, 1);
    }

    #[test]
    fn merges_share_one_dram_access() {
        let (mut s, mut pool) = mk_slice();
        for (id, core) in [(1, 0), (2, 1), (3, 2)] {
            let h = read(&mut pool, id, core, 5);
            s.deliver(h);
        }
        run(&mut s, &mut pool, 0, 40);
        assert_eq!(s.stats.mshr_allocs, 1);
        assert_eq!(s.stats.mshr_merges, 2);
        assert_eq!(s.dram_reads.len(), 1, "one fetch serves three requesters");
        let (line, _) = s.dram_reads.pop_front().unwrap();
        s.deliver_fill(line);
        run(&mut s, &mut pool, 40, 5);
        assert_eq!(s.outbound.len(), 3, "every requester gets data");
    }

    #[test]
    fn entry_exhaustion_stalls_pipeline() {
        let (mut s, mut pool) = mk_slice();
        let cfg = slice_cfg();
        // Fill all MSHR entries with distinct lines, then send one more.
        for i in 0..cfg.mshr_entries as u64 + 1 {
            let h = read(&mut pool, i, 0, 10 + i);
            s.deliver(h);
        }
        run(&mut s, &mut pool, 0, 200);
        assert_eq!(s.stats.mshr_allocs, cfg.mshr_entries as u64);
        assert!(s.stats.stall_cycles > 0, "pipeline must stall");
        assert!(s.stats.stall_entry_full > 0);
        assert_eq!(s.mshr_occupancy(), cfg.mshr_entries);
        // A fill releases the stall.
        let (line, _) = s.dram_reads.pop_front().unwrap();
        s.deliver_fill(line);
        run(&mut s, &mut pool, 200, 20);
        assert_eq!(
            s.stats.mshr_allocs,
            cfg.mshr_entries as u64 + 1,
            "stalled miss proceeds after the fill frees an entry"
        );
    }

    #[test]
    fn target_exhaustion_stalls_pipeline() {
        let (mut s, mut pool) = mk_slice();
        let cfg = slice_cfg();
        for i in 0..cfg.mshr_targets as u64 + 1 {
            let h = read(&mut pool, i, (i % 4) as usize, 5);
            s.deliver(h);
        }
        run(&mut s, &mut pool, 0, 300);
        assert_eq!(s.stats.mshr_allocs, 1);
        assert_eq!(s.stats.mshr_merges, cfg.mshr_targets as u64 - 1);
        assert!(s.stats.stall_target_full > 0);
    }

    #[test]
    fn write_miss_fetches_then_dirties() {
        let (mut s, mut pool) = mk_slice();
        let w = pool.alloc(MemReq {
            id: 1,
            core: 0,
            request: 0,
            line_addr: 9 * LINE_BYTES * 8,
            is_write: true,
            issued_at: 0,
        });
        s.deliver(w);
        run(&mut s, &mut pool, 0, 20);
        assert_eq!(s.stats.misses, 1, "write-allocate fetches the line");
        let (line, _) = s.dram_reads.pop_front().unwrap();
        s.deliver_fill(line);
        run(&mut s, &mut pool, 20, 10);
        assert!(s.outbound.is_empty(), "writes are posted: no response");
        // Evict it by filling the set: dirty writeback must appear.
        // (Directly test via invalidate-like path: insert conflicting lines.)
        assert_eq!(s.stats.fills, 1);
    }

    #[test]
    fn hit_latency_plus_data_latency() {
        let (mut s, mut pool) = mk_slice();
        let cfg = slice_cfg();
        let h = read(&mut pool, 1, 0, 4);
        s.deliver(h);
        run(&mut s, &mut pool, 0, 20);
        let (line, _) = s.dram_reads.pop_front().unwrap();
        s.deliver_fill(line);
        let now = run(&mut s, &mut pool, 20, 10);
        s.outbound.clear();
        // Second access hits: response time = arbitration + hit + data.
        let h = read(&mut pool, 2, 0, 4);
        s.deliver(h);
        let start = now;
        let mut resp_at = None;
        for c in now..now + 100 {
            s.tick(c, &mut pool);
            if let Some(o) = s.outbound.front() {
                resp_at = Some(o.at);
                break;
            }
        }
        let resp_at = resp_at.expect("hit response");
        // One cycle ingress + arbitration, hit_latency for tags, then
        // data_latency.
        let min = start + cfg.hit_latency + cfg.data_latency;
        assert!(
            resp_at >= min && resp_at <= min + 4,
            "hit response at {resp_at}, expected near {min}"
        );
    }

    #[test]
    fn served_counters_track_cores() {
        let (mut s, mut pool) = mk_slice();
        for (id, core, line) in [(1, 0, 1), (2, 1, 2), (3, 1, 3)] {
            let h = read(&mut pool, id, core, line);
            s.deliver(h);
        }
        run(&mut s, &mut pool, 0, 50);
        assert_eq!(s.served()[0], 1);
        assert_eq!(s.served()[1], 2);
        s.start_operator();
        assert_eq!(s.served()[1], 0);
    }

    #[test]
    fn req_q_capacity_backpressures_to_ingress() {
        let (mut s, mut pool) = mk_slice();
        let cfg = slice_cfg();
        // MSHR capacity is 6; deliver far more distinct misses at once.
        for i in 0..40u64 {
            let h = read(&mut pool, i, 0, 100 + i);
            s.deliver(h);
        }
        s.tick(0, &mut pool);
        assert!(s.req_q.len() <= cfg.req_q_size);
        run(&mut s, &mut pool, 1, 50);
        assert!(s.stats.req_q_rejects > 0, "ingress should have backed up");
    }
}
