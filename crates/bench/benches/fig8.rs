//! Fig 8: detailed mechanism comparison for the llama3 70b 8K benchmark.
//!
//! Reports, for each policy in the unoptimized → dynmg → dynmg+BMA
//! ladder (plus the baselines), the quantities the paper plots:
//! normalized performance, MSHR entry utilization, L2 hit rate, MSHR hit
//! rate and average DRAM bandwidth. The paper's reading: performance
//! correlates with MSHR entry utilization and DRAM bandwidth; moving
//! from unoptimized to dynmg to dynmg+BMA converts cache hits into MSHR
//! hits (locality captured in the MSHRs rather than in storage).
//!
//! One [`Campaign`]: a single scenario crossed with the seven-policy
//! ladder, normalized against the unoptimized column.

use llamcat::experiment::Model;
use llamcat::spec::PolicySpec;
use llamcat_bench::{scale_divisor, scale_label, Campaign};

fn main() {
    let seq = 8192 / scale_divisor();
    println!(
        "# Fig 8 — mechanism metrics, llama3 70b @ {}K (scale: {})",
        seq / 1024,
        scale_label()
    );
    let report = Campaign::new("fig8")
        .workload(Model::Llama3_70b.spec())
        .seq_lens([seq])
        .policies([
            PolicySpec::unoptimized(),
            PolicySpec::dyncta(),
            PolicySpec::lcs(),
            PolicySpec::dynmg(),
            PolicySpec::dynmg_b(),
            PolicySpec::dynmg_ma(),
            PolicySpec::dynmg_bma(),
        ])
        .baseline(PolicySpec::unoptimized())
        .run()
        .expect("fig8 campaign");

    println!(
        "{:<14} {:>11} {:>8} {:>9} {:>8} {:>9} {:>11} {:>8} {:>9}",
        "policy",
        "perf(norm)",
        "entutil",
        "l2hit",
        "mshrhit",
        "t_cs",
        "dram(GB/s)",
        "dramacc",
        "migrations"
    );
    for rec in &report.records {
        let r = &rec.report;
        println!(
            "{:<14} {:>10.3}x {:>8.3} {:>9.3} {:>8.3} {:>9.3} {:>11.2} {:>8} {:>9}",
            r.policy_label,
            rec.speedup.expect("baseline set"),
            r.mshr_entry_util,
            r.l2_hit_rate,
            r.mshr_hit_rate,
            r.t_cs,
            r.dram_bandwidth_gbs,
            r.dram_accesses,
            r.tb_migrations,
        );
    }
    println!(
        "\nPaper reference (shape): DRAM accesses roughly constant across \
         policies; MSHR hit rate rises and L2 hit rate falls along \
         unoptimized -> dynmg -> dynmg+BMA; performance tracks MSHR entry \
         utilization and DRAM bandwidth."
    );
}
