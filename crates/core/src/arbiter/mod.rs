//! LLC request-arbitration policies (Section 4 of the paper).
//!
//! * [`balanced::BalancedArbiter`] — policy **B**: serve the core with
//!   the smallest progress counter first.
//! * [`mshr_aware::MshrAwareArbiter`] — policies **MA** / **BMA**:
//!   prioritize speculated cache hits and MSHR hits using the hit
//!   buffer, the MSHR snapshot and the `sent_reqs` FIFO.
//! * [`cobrra::CobrraArbiter`] — the COBRRA baseline (adaptive
//!   request-response arbitration, bypass disabled).

pub mod balanced;
pub mod cobrra;
pub mod hit_buffer;
pub mod mshr_aware;
pub mod sent_reqs;

pub use balanced::BalancedArbiter;
pub use cobrra::CobrraArbiter;
pub use hit_buffer::HitBuffer;
pub use mshr_aware::{MshrAwareArbiter, MshrAwareConfig, TieBreak};
pub use sent_reqs::SentReqs;
