fn main() {
    // Cargo only exposes the build profile to build scripts (`PROFILE`
    // is "release" or "debug" — custom profiles report the one they
    // inherit from). Bake it into the binary so every machine-readable
    // bench artifact can record what it was compiled under; the
    // `LLAMCAT_BENCH_PROFILE` runtime override covers custom profile
    // names the baked-in family can't distinguish.
    println!(
        "cargo:rustc-env=LLAMCAT_BUILD_PROFILE={}",
        std::env::var("PROFILE").unwrap_or_else(|_| "unknown".into())
    );
}
