//! fig_serve: open-system serving — arrival-rate sweep to the
//! saturation knee.
//!
//! The paper (and fig_mix) evaluate closed request sets: every request
//! is known before cycle 0. This target opens the system: a seeded
//! Poisson arrival process feeds the request injector mid-run, and a
//! serving scheduler (FCFS, max-concurrency, continuous batching)
//! decides when queued requests reach the machine. Sweeping the
//! arrival rate from light load toward saturation locates the knee —
//! the rate where p99 TTFT departs from its light-load plateau — for
//! each (serving policy × cache policy) cell.
//!
//! Every sweep point runs in both step modes and asserts byte-identical
//! per-request statistics (arrival, admission, TTFT, TBT), extending
//! the Skip ≡ Cycle guarantee to mid-run injection. One JSON record per
//! (cell, rate) point goes to stdout; when `LLAMCAT_FIG_SERVE_JSON`
//! names a path, a machine-readable report with simulator throughput
//! (cyc/s) and the per-cell knee is written there (the artifact
//! `BENCH_sim_speed.json` archives).
//!
//! Scale via `LLAMCAT_SCALE` as usual (full | half | quick).

use std::time::Instant;

use llamcat::experiment::{Experiment, Model, Policy, RunReport};
use llamcat::spec::{ArrivalSpec, PolicySpec, ServePolicySpec, ServeSpec};
use llamcat_bench::{run_experiments, scale_divisor, scale_label};
use llamcat_sim::system::StepMode;

/// One serving cell of the sweep: a serving policy × a cache policy.
struct ServeCell {
    name: &'static str,
    scheduler: ServePolicySpec,
    policy: PolicySpec,
}

fn cells() -> Vec<ServeCell> {
    vec![
        ServeCell {
            name: "fcfs/unoptimized",
            scheduler: ServePolicySpec::Fcfs,
            policy: PolicySpec::unoptimized(),
        },
        ServeCell {
            name: "fcfs/dynmg+BMA",
            scheduler: ServePolicySpec::Fcfs,
            policy: PolicySpec::dynmg_bma(),
        },
        ServeCell {
            name: "maxc2/dynmg+BMA",
            scheduler: ServePolicySpec::MaxConcurrency { max: 2 },
            policy: PolicySpec::dynmg_bma(),
        },
        ServeCell {
            name: "cb4/dynmg+BMA",
            scheduler: ServePolicySpec::ContinuousBatching { slots: 4 },
            policy: PolicySpec::dynmg_bma(),
        },
    ]
}

fn serve_spec(seq_len: usize, n_req: usize, mean_gap: u64, cell: &ServeCell) -> ServeSpec {
    ServeSpec::new(
        Model::Llama3_70b.spec(),
        seq_len,
        n_req,
        ArrivalSpec::Poisson { mean_gap, seed: 7 },
    )
    .scheduler(cell.scheduler)
}

/// Sorted-sample quantile (nearest rank on the sorted slice).
fn quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty(), "quantile of an empty sample");
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// One finished sweep point: the latency profile of a (cell, rate) run.
struct SweepPoint {
    mean_gap: u64,
    p50_ttft: u64,
    p99_ttft: u64,
    mean_queue_delay: f64,
    completed: usize,
    cycles: u64,
}

fn point_of(report: &RunReport, mean_gap: u64) -> SweepPoint {
    let mut ttfts: Vec<u64> = report.requests.iter().filter_map(|r| r.ttft).collect();
    ttfts.sort_unstable();
    assert!(
        !ttfts.is_empty(),
        "no request retired a block at gap {mean_gap}"
    );
    let delays: Vec<u64> = report
        .requests
        .iter()
        .filter_map(|r| r.queue_delay)
        .collect();
    SweepPoint {
        mean_gap,
        p50_ttft: quantile(&ttfts, 0.50),
        p99_ttft: quantile(&ttfts, 0.99),
        mean_queue_delay: delays.iter().sum::<u64>() as f64 / delays.len().max(1) as f64,
        completed: report.requests.iter().filter(|r| r.completed).count(),
        cycles: report.cycles,
    }
}

fn main() {
    let div = scale_divisor();
    let seq_len = 1024 / div;
    let n_req = if div >= 8 { 4 } else { 8 };

    // Calibrate the rate axis in units of the solo service time, so
    // the sweep brackets the knee at every scale: gaps well above the
    // service time are the open ("light load") regime, gaps below it
    // force queueing.
    let solo = Experiment::new(Model::Llama3_70b, seq_len)
        .policy(Policy::dynmg_bma())
        .run();
    assert!(solo.completed && solo.cycles > 0);
    let svc = solo.cycles;
    let gap_factors: &[f64] = if div >= 8 {
        &[4.0, 1.0, 0.25]
    } else {
        &[8.0, 4.0, 2.0, 1.0, 0.5, 0.25]
    };
    let gaps: Vec<u64> = gap_factors
        .iter()
        .map(|f| ((svc as f64 * f) as u64).max(1))
        .collect();

    println!(
        "# fig_serve — open-system arrival-rate sweep to the saturation knee \
         (scale: {}, seq {seq_len}, {n_req} requests, solo service {svc} cycles)",
        scale_label()
    );

    // The whole sweep — every (cell, gap) in both step modes — as one
    // parallel batch.
    let cell_defs = cells();
    let mut experiments = Vec::new();
    for cell in &cell_defs {
        for &gap in &gaps {
            let spec = serve_spec(seq_len, n_req, gap, cell);
            for mode in [StepMode::Cycle, StepMode::Skip] {
                experiments.push(
                    Experiment::from_serve_spec(&spec)
                        .expect("serve spec composes")
                        .policy(cell.policy.clone())
                        .step_mode(mode),
                );
            }
        }
    }
    let reports = run_experiments(&experiments).expect("fig_serve sweep");

    let mut json_points: Vec<String> = Vec::new();
    let mut knees: Vec<(String, Option<u64>)> = Vec::new();
    for (c, cell) in cell_defs.iter().enumerate() {
        println!("\n### {} ({})", cell.name, cell.policy.label());
        println!(
            "{:>12} {:>14} {:>10} {:>10} {:>12} {:>10}",
            "mean-gap", "rate/Mcyc", "p50-ttft", "p99-ttft", "mean-queue", "completed"
        );
        let mut points = Vec::with_capacity(gaps.len());
        for (g, &gap) in gaps.iter().enumerate() {
            let base = (c * gaps.len() + g) * 2;
            let (cycle, skip) = (&reports[base], &reports[base + 1]);
            assert_eq!(
                serde_json::to_string(&cycle.requests).unwrap(),
                serde_json::to_string(&skip.requests).unwrap(),
                "per-request stats diverged between step modes ({}, gap {gap})",
                cell.name
            );
            assert_eq!(cycle.cycles, skip.cycles);
            let pt = point_of(cycle, gap);
            println!(
                "{:>12} {:>14.2} {:>10} {:>10} {:>12.0} {:>7}/{}",
                pt.mean_gap,
                1e6 / pt.mean_gap as f64,
                pt.p50_ttft,
                pt.p99_ttft,
                pt.mean_queue_delay,
                pt.completed,
                n_req
            );
            points.push(pt);
        }
        // The knee: the first rate (sweeping load upward) whose p99
        // TTFT leaves the light-load plateau by more than 3x.
        let plateau = points[0].p99_ttft.max(1);
        let knee = points
            .iter()
            .find(|p| p.p99_ttft > plateau.saturating_mul(3))
            .map(|p| p.mean_gap);
        match knee {
            Some(gap) => println!(
                "    knee: p99 TTFT exceeds 3x light-load plateau at mean gap {gap} \
                 ({:.2} requests/Mcyc)",
                1e6 / gap as f64
            ),
            None => println!("    knee: not reached in this sweep"),
        }
        for pt in &points {
            json_points.push(format!(
                "{{\"cell\": \"{}\", \"policy\": \"{}\", \"mean_gap\": {}, \
                 \"rate_per_mcyc\": {:.4}, \"p50_ttft\": {}, \"p99_ttft\": {}, \
                 \"mean_queue_delay\": {:.1}, \"completed\": {}, \"cycles\": {}, \
                 \"knee_gap\": {}}}",
                cell.name,
                cell.policy.label(),
                pt.mean_gap,
                1e6 / pt.mean_gap as f64,
                pt.p50_ttft,
                pt.p99_ttft,
                pt.mean_queue_delay,
                pt.completed,
                pt.cycles,
                knee.map_or("null".into(), |g| g.to_string()),
            ));
        }
        knees.push((cell.name.to_string(), knee));
    }

    // Deterministic JSONL artifact (byte-identical across runs).
    println!("\n## JSONL");
    for line in &json_points {
        println!("{line}");
    }

    // Simulator throughput on a representative serve cell, both modes,
    // sequential timing (the cyc/s figure BENCH_sim_speed.json tracks).
    let mid_gap = gaps[gaps.len() / 2];
    let spec = serve_spec(seq_len, n_req, mid_gap, &cell_defs[1]);
    let mut speed = Vec::new();
    for mode in [StepMode::Cycle, StepMode::Skip] {
        let exp = Experiment::from_serve_spec(&spec)
            .expect("serve spec composes")
            .policy(cell_defs[1].policy.clone())
            .step_mode(mode);
        let t0 = Instant::now();
        let r = exp.run();
        let wall = t0.elapsed().as_secs_f64();
        println!(
            "[fig_serve] throughput {} {mode:?}: {} cycles in {wall:.3}s = {:.0} cyc/s",
            cell_defs[1].name,
            r.cycles,
            r.cycles as f64 / wall
        );
        speed.push((mode, r.cycles, wall));
    }

    if let Ok(path) = std::env::var("LLAMCAT_FIG_SERVE_JSON") {
        let mut json = String::from("{\n  \"schema\": \"llamcat-fig-serve/1\",\n");
        json.push_str(&format!(
            "  \"seq_len\": {seq_len},\n  \"num_requests\": {n_req},\n  \"solo_service_cycles\": {svc},\n"
        ));
        json.push_str("  \"throughput\": [\n");
        for (i, (mode, cycles, wall)) in speed.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"cell\": \"{}\", \"mode\": \"{mode:?}\", \"cycles\": {cycles}, \
                 \"wall_s\": {wall:.4}, \"cycles_per_sec\": {:.0}}}{}\n",
                cell_defs[1].name,
                *cycles as f64 / wall,
                if i + 1 == speed.len() { "" } else { "," }
            ));
        }
        json.push_str("  ],\n  \"knees\": [\n");
        for (i, (name, knee)) in knees.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"cell\": \"{name}\", \"knee_gap\": {}}}{}\n",
                knee.map_or("null".into(), |g| g.to_string()),
                if i + 1 == knees.len() { "" } else { "," }
            ));
        }
        json.push_str("  ],\n  \"points\": [\n");
        for (i, line) in json_points.iter().enumerate() {
            json.push_str(&format!(
                "    {line}{}\n",
                if i + 1 == json_points.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write fig_serve JSON report");
        println!("wrote {path}");
    }
}
