//! Allocation-regression gate for the data-oriented hot path.
//!
//! A counting global allocator wraps the system allocator; a
//! fig7-shaped memory-bound program (streaming vector loads with thin
//! compute, 16 cores, stores at block tails) is warmed up until every
//! ring buffer, arena and scratch vector has reached its steady-state
//! capacity, and then a long window of cycle-accurate ticks must
//! perform **zero heap allocations**. This pins the PR-5 invariant that
//! the steady-state tick loop is allocation-free: MSHR target lists and
//! L1 waiter lists live in flat preallocated storage, requests are
//! recycled through the `ReqPool` arena, the NoC lanes and pipeline
//! queues reuse their rings, and the per-fill `mshr_pipe` rebuild is an
//! in-place rotation.

use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};

use llamcat_sim::arb::{FifoArbiter, NoThrottle};
use llamcat_sim::config::SystemConfig;
use llamcat_sim::prog::{Instr, Program, ThreadBlock};
use llamcat_sim::system::System;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
/// Diagnostics: while armed, the size of the last offending
/// (re)allocation is recorded so a regression points at its source
/// (1_000_000 + size marks a realloc).
static TRAP: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
static TRAP_SIZE: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        if TRAP.load(Ordering::Relaxed) {
            TRAP_SIZE.store(layout.size() as u64, Ordering::Relaxed);
        }
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        if TRAP.load(Ordering::Relaxed) {
            TRAP_SIZE.store(1_000_000 + new_size as u64, Ordering::Relaxed);
        }
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A fig7-shaped decode program: every block streams vector loads
/// (128 B, split into two line requests each) over a distinct address
/// range with one compute cycle per row — the paper-default
/// memory-bound regime where the machine is busy nearly every cycle —
/// then barriers and posts a store (the attention-output write-back
/// shape), so the write path and DRAM write queues warm up too.
fn fig7_shaped_program(cores: usize, blocks_per_core: usize, rows: usize) -> Program {
    let mut blocks = Vec::new();
    for b in 0..(cores * blocks_per_core) as u64 {
        let base = b * (rows as u64) * 128;
        let mut instrs = Vec::new();
        for r in 0..rows as u64 {
            instrs.push(Instr::Load {
                addr: base + r * 128,
                bytes: 128,
            });
            instrs.push(Instr::Compute { cycles: 1 });
        }
        instrs.push(Instr::Barrier);
        instrs.push(Instr::Store {
            addr: base,
            bytes: 64,
        });
        blocks.push(ThreadBlock { instrs });
    }
    Program::round_robin(blocks, cores)
}

#[test]
fn steady_state_ticks_are_allocation_free() {
    let mut cfg = SystemConfig::table5();
    cfg.dram.refresh = true; // include the refresh machinery
    let program = fig7_shaped_program(cfg.num_cores, 24, 64);
    let mut system = System::new(cfg, program, &|_| FifoArbiter, NoThrottle);

    // Warm-up: long enough for every queue, lane, arena and scratch to
    // reach its high-water capacity (the machine is in steady state
    // well before this).
    for _ in 0..40_000 {
        system.tick();
    }
    assert!(
        !system.is_done(),
        "warm-up consumed the whole program; grow it so the window \
         measures steady state"
    );

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    TRAP.store(true, Ordering::Relaxed);
    for _ in 0..20_000 {
        system.tick();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(
        !system.is_done(),
        "measurement window drained the program; grow it so the window \
         measures steady state"
    );
    assert_eq!(
        after - before,
        0,
        "steady-state ticks allocated {} times (last size {})",
        after - before,
        TRAP_SIZE.load(Ordering::Relaxed)
    );
}
