//! Calibration probe: quick policy comparison on one workload.
//!
//! Usage: `probe [seq_len] [model=70b|405b] [l2_mb]`

use llamcat::experiment::{Experiment, Model, Policy};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seq_len: usize = args.get(1).map(|s| s.parse().unwrap()).unwrap_or(2048);
    let model = match args.get(2).map(|s| s.as_str()) {
        Some("405b") => Model::Llama3_405b,
        _ => Model::Llama3_70b,
    };
    let l2_mb: u64 = args.get(3).map(|s| s.parse().unwrap()).unwrap_or(16);
    let l1_entries: usize = args.get(4).map(|s| s.parse().unwrap()).unwrap_or(16);
    let l1_targets: usize = args.get(5).map(|s| s.parse().unwrap()).unwrap_or(8);
    let hit_occ: u64 = args.get(6).map(|s| s.parse().unwrap()).unwrap_or(25);

    let policies = [
        Policy::unoptimized(),
        Policy::dyncta(),
        Policy::lcs(),
        Policy::cobrra(),
        Policy::dynmg(),
        Policy::dynmg_b(),
        Policy::dynmg_ma(),
        Policy::dynmg_bma(),
        Policy::dynmg_cobrra(),
    ];
    println!(
        "model={} seq_len={} l2={}MB",
        match model {
            Model::Llama3_70b => "70b",
            Model::Llama3_405b => "405b",
        },
        seq_len,
        l2_mb
    );
    println!(
        "{:<14} {:>12} {:>8} {:>7} {:>7} {:>7} {:>7} {:>9} {:>7} {:>8} {:>9} {:>9} {:>6}",
        "policy",
        "cycles",
        "speedup",
        "l2hit",
        "mshrhit",
        "entutil",
        "t_cs",
        "dram(GB/s)",
        "rowhit",
        "dramacc",
        "stallE",
        "stallT",
        "wall_s"
    );
    let mut base_cycles = None;
    for p in policies {
        let t0 = Instant::now();
        let mut e = Experiment::new(model, seq_len).l2_mb(l2_mb).policy(p);
        e.config.l1.miss_entries = l1_entries;
        e.config.l1.miss_targets = l1_targets;
        e.config.l2.hit_occupancy = hit_occ;
        let r = e.run();
        let wall = t0.elapsed().as_secs_f64();
        let base = *base_cycles.get_or_insert(r.cycles);
        let st = r.stats.as_ref().unwrap();
        let entry_stall: u64 = st.slices.iter().map(|x| x.stall_entry_full).sum();
        let target_stall: u64 = st.slices.iter().map(|x| x.stall_target_full).sum();
        println!(
            "{:<14} {:>12} {:>7.3}x {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>9.2} {:>7.3} {:>8} {:>9} {:>9} {:>6.1}{}",
            r.policy_label,
            r.cycles,
            base as f64 / r.cycles as f64,
            r.l2_hit_rate,
            r.mshr_hit_rate,
            r.mshr_entry_util,
            r.t_cs,
            r.dram_bandwidth_gbs,
            r.row_hit_rate,
            r.dram_accesses,
            entry_stall,
            target_stall,
            wall,
            if r.completed { "" } else { "  [CYCLE LIMIT]" }
        );
    }
}
