//! Constrained mapper: a small Timeloop-style search over legal Logit
//! mappings.
//!
//! The search space is deliberately the one the paper describes — tile
//! size of the L dimension (thread blocks covering 1–2 output cache
//! lines) and thread-block enumeration order — filtered by the
//! constraints of Section 6.2.2 and ranked by an analytical locality
//! cost. Hand-written mappings bypass the search (the "our flow also
//! accepts handwritten mapping dataflows" path).

use serde::{Deserialize, Serialize};

use crate::mapping::{logit_mapping, logit_mapping_spatial, Mapping, TbOrder};
use crate::workload::{LogitOp, ELEM_BYTES};

/// Which dataflow family a candidate belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dataflow {
    /// Spatial G (+ L segments) across cores — the paper's dataflow.
    Spatial,
    /// Round-robin blocks over cores in the given temporal order.
    RoundRobin(TbOrder),
}

/// Search constraints (paper defaults encoded in `Default`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MapperConstraints {
    /// Minimum output-line coverage per thread block (lines of 64 B).
    pub min_output_lines: usize,
    /// Maximum output-line coverage per thread block.
    pub max_output_lines: usize,
    /// Number of cores blocks are distributed over (for the reuse-distance
    /// estimate).
    pub num_cores: usize,
}

impl Default for MapperConstraints {
    fn default() -> Self {
        MapperConstraints {
            min_output_lines: 1,
            max_output_lines: 2,
            num_cores: 16,
        }
    }
}

/// A scored mapping candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    pub mapping: Mapping,
    pub l_tile: usize,
    pub dataflow: Dataflow,
    /// Estimated K reuse distance in bytes (lower is better: reuse that
    /// fits within on-chip capacity converts DRAM traffic into LLC hits
    /// or MSHR merges).
    pub est_reuse_distance: u64,
    /// Estimated thread-block instruction count (must fit an instruction
    /// window).
    pub est_tb_instrs: usize,
}

/// Estimates the K reuse distance of a mapping, in bytes of intervening
/// K traffic between two uses of the same K tile.
fn reuse_distance(op: &LogitOp, l_tile: usize, dataflow: Dataflow, cores: usize) -> u64 {
    let tile_bytes = l_tile as u64 * op.k_row_bytes();
    match dataflow {
        // Sharers run concurrently on different cores: nominal distance
        // is a single tile in flight (drift adds to it at runtime).
        Dataflow::Spatial => tile_bytes,
        // The G sharers are consecutive blocks: they run on different
        // cores within roughly one scheduling wave. Intervening traffic
        // is about one tile per core in flight.
        Dataflow::RoundRobin(TbOrder::GInner) => {
            tile_bytes * (cores as u64).div_ceil(op.group_size.max(1) as u64).max(2)
        }
        // Each (h, g) streams the whole K[h] before g advances: reuse
        // distance is the full per-head K footprint.
        Dataflow::RoundRobin(TbOrder::LInner) => op.seq_len as u64 * op.k_row_bytes(),
    }
}

/// Rough instruction count of one thread block under a mapping
/// (Q loads + K loads + amortized compute + barrier + stores).
fn tb_instrs(op: &LogitOp, l_tile: usize, vector_len_bytes: u64) -> usize {
    let q_loads = (op.k_row_bytes() as usize).div_ceil(vector_len_bytes as usize);
    let k_loads = l_tile * (op.k_row_bytes() as usize).div_ceil(vector_len_bytes as usize);
    let computes = l_tile.div_ceil(4);
    let stores = ((l_tile as u64 * ELEM_BYTES) as usize).div_ceil(vector_len_bytes as usize);
    q_loads + k_loads + computes + 1 + stores
}

/// Enumerates all legal candidates, best (lowest reuse distance) first.
pub fn enumerate(op: &LogitOp, c: &MapperConstraints) -> Vec<Candidate> {
    let mut out = Vec::new();
    let tokens_per_line = (64 / ELEM_BYTES) as usize; // 32
    for lines in c.min_output_lines..=c.max_output_lines {
        let l_tile = lines * tokens_per_line;
        if !op.seq_len.is_multiple_of(l_tile) {
            continue;
        }
        let dataflows = [
            Dataflow::Spatial,
            Dataflow::RoundRobin(TbOrder::GInner),
            Dataflow::RoundRobin(TbOrder::LInner),
        ];
        for dataflow in dataflows {
            let mapping = match dataflow {
                Dataflow::Spatial => logit_mapping_spatial(op, l_tile, c.num_cores),
                Dataflow::RoundRobin(order) => logit_mapping(op, l_tile, order),
            };
            if mapping.validate(op).is_err() {
                continue;
            }
            out.push(Candidate {
                est_reuse_distance: reuse_distance(op, l_tile, dataflow, c.num_cores),
                est_tb_instrs: tb_instrs(op, l_tile, 128),
                mapping,
                l_tile,
                dataflow,
            });
        }
    }
    out.sort_by_key(|cand| (cand.est_reuse_distance, cand.l_tile));
    out
}

/// Returns the best legal mapping for the operator, or an error when the
/// constraint window admits none.
pub fn best_mapping(op: &LogitOp, c: &MapperConstraints) -> Result<Candidate, String> {
    enumerate(op, c)
        .into_iter()
        .next()
        .ok_or_else(|| format!("no legal mapping for {op:?} under {c:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_mapping_prefers_spatial() {
        let op = LogitOp::llama3_70b(4096);
        let best = best_mapping(&op, &MapperConstraints::default()).unwrap();
        assert_eq!(best.dataflow, Dataflow::Spatial, "concurrent sharing wins");
        assert_eq!(best.l_tile, 32, "1 output line preferred");
        assert!(best.mapping.is_spatial());
    }

    #[test]
    fn enumerate_produces_all_legal_candidates() {
        let op = LogitOp::llama3_70b(4096);
        let cands = enumerate(&op, &MapperConstraints::default());
        // 2 tile sizes x 3 dataflows.
        assert_eq!(cands.len(), 6);
        for c in &cands {
            c.mapping.validate(&op).unwrap();
        }
        // Sorted by reuse distance.
        for w in cands.windows(2) {
            assert!(w[0].est_reuse_distance <= w[1].est_reuse_distance);
        }
    }

    #[test]
    fn l_inner_has_full_stream_distance() {
        let op = LogitOp::llama3_70b(8192);
        let d = reuse_distance(&op, 32, Dataflow::RoundRobin(TbOrder::LInner), 16);
        assert_eq!(d, 8192 * 256, "full per-head K footprint");
        let g = reuse_distance(&op, 32, Dataflow::RoundRobin(TbOrder::GInner), 16);
        assert!(g < d / 100, "GInner distance orders of magnitude lower");
        let s = reuse_distance(&op, 32, Dataflow::Spatial, 16);
        assert!(s < g, "spatial concurrent sharing is tightest");
    }

    #[test]
    fn tb_fits_instruction_window() {
        let op = LogitOp::llama3_70b(4096);
        for cand in enumerate(&op, &MapperConstraints::default()) {
            if cand.l_tile == 32 {
                assert!(
                    cand.est_tb_instrs <= 128,
                    "1-line blocks must fit the window: {}",
                    cand.est_tb_instrs
                );
            }
        }
    }

    #[test]
    fn indivisible_sequence_skipped() {
        // seq_len 100 is not divisible by 32 or 64.
        let op = LogitOp {
            heads: 2,
            group_size: 2,
            seq_len: 100,
            head_dim: 128,
        };
        assert!(best_mapping(&op, &MapperConstraints::default()).is_err());
    }
}
