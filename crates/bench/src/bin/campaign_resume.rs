//! Resumable campaign runner: executes a JSON-defined [`Campaign`]
//! against a JSONL archive, skipping cells whose content address
//! ([`llamcat_bench::cell_spec_hash`]) is already archived and
//! appending the rest crash-safely. Kill it mid-run and invoke it
//! again: completed cells are never re-simulated, and the merged
//! stream is byte-identical to an uninterrupted run.
//!
//! Usage:
//!
//! ```text
//! campaign_resume <campaign.json> <archive.jsonl> [--shard I/N] [--out FILE]
//! ```
//!
//! `--shard I/N` runs only cells with `index % N == I` (0-based),
//! letting N invocations split one grid — sequentially against one
//! archive, or independently against per-shard archives concatenated
//! before a final merge run. The merged JSONL goes to `--out` (or
//! stdout); warnings and a summary go to stderr.

use llamcat_bench::Campaign;

fn usage() -> ! {
    eprintln!("usage: campaign_resume <campaign.json> <archive.jsonl> [--shard I/N] [--out FILE]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<String> = Vec::new();
    let mut shard = (0usize, 1usize);
    let mut out: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shard" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let (i, n) = spec.split_once('/').unwrap_or_else(|| usage());
                shard = match (i.parse(), n.parse()) {
                    (Ok(i), Ok(n)) => (i, n),
                    _ => usage(),
                };
            }
            "--out" => out = Some(it.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => positional.push(arg),
        }
    }
    let [campaign_path, archive_path] = positional.as_slice() else {
        usage();
    };

    let json = std::fs::read_to_string(campaign_path).unwrap_or_else(|e| {
        eprintln!("campaign_resume: read {campaign_path}: {e}");
        std::process::exit(1);
    });
    let campaign: Campaign = serde_json::from_str(&json).unwrap_or_else(|e| {
        eprintln!("campaign_resume: parse {campaign_path}: {e}");
        std::process::exit(1);
    });

    let report = campaign
        .run_resumable_shard(archive_path, shard.0, shard.1)
        .unwrap_or_else(|e| {
            eprintln!("campaign_resume: {e}");
            std::process::exit(1);
        });
    for w in &report.warnings {
        eprintln!("campaign_resume: {w}");
    }
    eprintln!(
        "campaign_resume: campaign `{}`: {} of {} cell record(s) merged",
        campaign.name,
        report.records.len(),
        campaign.cells().len()
    );

    match out {
        Some(path) => {
            let f = std::fs::File::create(&path).unwrap_or_else(|e| {
                eprintln!("campaign_resume: create {path}: {e}");
                std::process::exit(1);
            });
            report.write_jsonl(std::io::BufWriter::new(f))
        }
        None => report.write_jsonl(std::io::stdout().lock()),
    }
    .unwrap_or_else(|e| {
        eprintln!("campaign_resume: write merged JSONL: {e}");
        std::process::exit(1);
    });
}
