//! Differential suite: `StepMode::Skip` must be *observationally
//! equivalent* to the cycle-accurate `StepMode::Cycle` reference — not
//! merely "same cycle count" but byte-identical `SimStats` and the same
//! `RunOutcome` — across the entire policy grid the paper evaluates
//! (every `ArbPolicy` × `ThrottlePolicy` cell of the golden table) and
//! across cycle-budget boundaries.
//!
//! This is the headline guarantee of the fast-forward engine: any
//! component whose `next_event` bound is ever *late* (claims quiescence
//! past a real state change) or whose `skip` accrual diverges from its
//! per-cycle tick shows up here as a counter mismatch.

use llamcat::experiment::{ArbPolicy, Experiment, Model, Policy, ThrottlePolicy};
use llamcat_sim::system::StepMode;

const ARBS: [ArbPolicy; 5] = [
    ArbPolicy::Fifo,
    ArbPolicy::Balanced,
    ArbPolicy::MshrAware,
    ArbPolicy::BalancedMshrAware,
    ArbPolicy::Cobrra,
];

const THROTTLES: [ThrottlePolicy; 4] = [
    ThrottlePolicy::None,
    ThrottlePolicy::Dyncta,
    ThrottlePolicy::Lcs,
    ThrottlePolicy::DynMg,
];

fn experiment(policy: Policy, mode: StepMode) -> Experiment {
    Experiment::new(Model::Llama3_70b, 128)
        .policy(policy)
        .step_mode(mode)
}

/// Runs one policy cell in both modes and asserts full observational
/// equivalence: outcome, serialized report, serialized `SimStats`.
fn assert_cell_equivalent(policy: Policy, budget: Option<u64>) {
    let run = |mode| {
        let mut e = experiment(policy, mode);
        e.max_cycles = budget;
        e.run()
    };
    let cycle = run(StepMode::Cycle);
    let skip = run(StepMode::Skip);
    assert_eq!(
        cycle.completed,
        skip.completed,
        "{}: RunOutcome diverged (budget {budget:?})",
        policy.label()
    );
    assert_eq!(
        cycle.cycles,
        skip.cycles,
        "{}: cycle count diverged (budget {budget:?})",
        policy.label()
    );
    assert_eq!(
        serde_json::to_string(&cycle).unwrap(),
        serde_json::to_string(&skip).unwrap(),
        "{}: RunReport diverged (budget {budget:?})",
        policy.label()
    );
    assert_eq!(
        serde_json::to_string(cycle.stats.as_ref().unwrap()).unwrap(),
        serde_json::to_string(skip.stats.as_ref().unwrap()).unwrap(),
        "{}: SimStats diverged (budget {budget:?})",
        policy.label()
    );
}

/// The full 20-cell grid of the golden table, run to completion in both
/// step modes.
#[test]
fn all_golden_cells_are_mode_equivalent() {
    for &arb in &ARBS {
        for &throttle in &THROTTLES {
            assert_cell_equivalent(Policy::new(arb, throttle), None);
        }
    }
}

/// Regression for the cycle-budget edge: in Skip mode a jump must never
/// overshoot `max_cycles`, and a budget-limited run must report
/// `CycleLimit` at exactly the cycle count the cycle-accurate run
/// reports — including budgets that land mid-stall, mid-skip-window and
/// right at the completion cycle.
#[test]
fn budget_exhaustion_is_mode_equivalent() {
    // Completion cycle of this cell (golden table: 12269 for the
    // unoptimized baseline, but derive it so the test survives
    // intentional golden updates).
    let completed = experiment(Policy::unoptimized(), StepMode::Cycle).run();
    let full = completed.cycles;
    for policy in [Policy::unoptimized(), Policy::dynmg_bma()] {
        for budget in [
            1,
            2,
            97,
            1_000,
            full / 2,
            full - 1,
            full,
            full + 1,
            full + 10_000,
        ] {
            assert_cell_equivalent(policy, Some(budget));
        }
    }
    // And the budget is a hard ceiling in skip mode.
    let limited = experiment(Policy::unoptimized(), StepMode::Skip)
        .max_cycles(full / 2)
        .run();
    assert!(!limited.completed);
    assert_eq!(limited.cycles, full / 2, "skip ran past the budget");
}

/// A longer sequence length exercises deeper queue/stall regimes
/// (multiple DynMg gear shifts, DRAM write drains, refresh windows).
#[test]
fn longer_run_is_mode_equivalent() {
    let run = |mode| {
        Experiment::new(Model::Llama3_405b, 256)
            .policy(Policy::dynmg_bma())
            .step_mode(mode)
            .run()
    };
    let cycle = run(StepMode::Cycle);
    let skip = run(StepMode::Skip);
    assert_eq!(
        serde_json::to_string(cycle.stats.as_ref().unwrap()).unwrap(),
        serde_json::to_string(skip.stats.as_ref().unwrap()).unwrap(),
        "dynmg+BMA @405b/256 diverged between step modes"
    );
}
