//! High-level experiment API: one call from (workload, policy) to a
//! finished simulation with the paper's metrics.
//!
//! This is the entry point the benchmark harness, the examples and most
//! downstream users go through. The workload layer is open — anything
//! implementing [`Workload`] runs; [`Model`] remains as a thin preset
//! shim for the paper's two Llama3 shapes:
//!
//! ```
//! use llamcat::experiment::{Experiment, Model, Policy};
//!
//! let report = Experiment::new(Model::Llama3_70b, 512)
//!     .policy(Policy::dynmg_bma())
//!     .run();
//! assert!(report.completed);
//! ```
//!
//! Policies are data: [`Experiment::policy`] accepts anything
//! convertible to a [`PolicySpec`] — the legacy [`Policy`] selector
//! pairs, a registry name via [`PolicySpec::from_name`], or a spec with
//! explicit embedded configurations (see [`crate::spec`]).

use std::sync::Arc;

use llamcat_sim::batch::SystemBatch;
use llamcat_sim::config::SystemConfig;
use llamcat_sim::prog::Program;
use llamcat_sim::serve::RequestInjector;
use llamcat_sim::stats::{KvTierStats, SimStats, SloOutcome};
use llamcat_sim::system::{RunOutcome, StepMode, System, SystemState};
use llamcat_trace::mix::{generate_serve_set, WorkloadMix};
use llamcat_trace::tracegen::TraceGenConfig;
use llamcat_trace::workload::LogitOp;
use llamcat_trace::workloads::{LogitWorkload, Workload, WorkloadSpec};
use serde::{Deserialize, Serialize};

use crate::arbiter::ArbiterKind;
use crate::spec::{ArbSpec, KvSpec, MixSpec, PolicySpec, ServeSpec, ThrottleSpec};
use crate::throttle::ThrottleKind;

pub use llamcat_trace::mapping::Layout;

/// Evaluated model shapes (Section 6.2.2) — a thin preset shim over the
/// open [`Workload`] layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(non_camel_case_types)]
pub enum Model {
    /// Llama3 70b: H=8, G=8, D=128.
    Llama3_70b,
    /// Llama3 405b: H=8, G=16, D=128.
    Llama3_405b,
}

impl Model {
    pub fn op(&self, seq_len: usize) -> LogitOp {
        match self {
            Model::Llama3_70b => LogitOp::llama3_70b(seq_len),
            Model::Llama3_405b => LogitOp::llama3_405b(seq_len),
        }
    }

    /// The serializable workload family of this preset.
    pub fn spec(&self) -> WorkloadSpec {
        match self {
            Model::Llama3_70b => WorkloadSpec::llama3_70b(),
            Model::Llama3_405b => WorkloadSpec::llama3_405b(),
        }
    }

    /// The runnable workload of this preset at one sequence length.
    pub fn workload(&self, seq_len: usize) -> Arc<dyn Workload> {
        Arc::new(LogitWorkload::new(self.op(seq_len)))
    }

    pub fn label(&self) -> &'static str {
        match self {
            Model::Llama3_70b => "llama3 70b",
            Model::Llama3_405b => "llama3 405b",
        }
    }
}

/// Request-arbitration policy selector (legacy closed-world enum; the
/// open path is [`ArbSpec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArbPolicy {
    /// Default FIFO (unoptimized).
    Fifo,
    /// Balanced ("B").
    Balanced,
    /// MSHR-aware with FIFO tie-break ("MA").
    MshrAware,
    /// MSHR-aware with balanced tie-break ("BMA").
    BalancedMshrAware,
    /// COBRRA baseline.
    Cobrra,
}

impl ArbPolicy {
    pub fn label(&self) -> &'static str {
        self.spec().label()
    }

    /// The open-world spec this selector stands for.
    pub fn spec(&self) -> ArbSpec {
        match self {
            ArbPolicy::Fifo => ArbSpec::Fifo,
            ArbPolicy::Balanced => ArbSpec::Balanced,
            ArbPolicy::MshrAware => ArbSpec::MshrAware,
            ArbPolicy::BalancedMshrAware => ArbSpec::BalancedMshrAware,
            ArbPolicy::Cobrra => ArbSpec::Cobrra,
        }
    }
}

impl From<ArbPolicy> for ArbSpec {
    fn from(p: ArbPolicy) -> ArbSpec {
        p.spec()
    }
}

/// Thread-throttling policy selector (legacy closed-world enum; the
/// open path is [`ThrottleSpec`] with embedded configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThrottlePolicy {
    /// No throttling (unoptimized).
    None,
    /// DYNCTA baseline.
    Dyncta,
    /// LCS baseline.
    Lcs,
    /// The paper's two-level dynamic multi-gear controller.
    DynMg,
}

impl ThrottlePolicy {
    pub fn label(&self) -> &'static str {
        self.spec().label()
    }

    /// The open-world spec (with default configuration) this selector
    /// stands for.
    pub fn spec(&self) -> ThrottleSpec {
        match self {
            ThrottlePolicy::None => ThrottleSpec::None,
            ThrottlePolicy::Dyncta => ThrottleSpec::dyncta(),
            ThrottlePolicy::Lcs => ThrottleSpec::Lcs,
            ThrottlePolicy::DynMg => ThrottleSpec::dynmg(),
        }
    }
}

impl From<ThrottlePolicy> for ThrottleSpec {
    fn from(p: ThrottlePolicy) -> ThrottleSpec {
        p.spec()
    }
}

/// A complete policy combination as named in the paper's figures
/// (legacy `Copy` selector pair; converts into [`PolicySpec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Policy {
    pub arb: ArbPolicy,
    pub throttle: ThrottlePolicy,
}

impl Policy {
    pub const fn new(arb: ArbPolicy, throttle: ThrottlePolicy) -> Self {
        Policy { arb, throttle }
    }

    /// The unoptimized baseline (FIFO, no throttling).
    pub const fn unoptimized() -> Self {
        Policy::new(ArbPolicy::Fifo, ThrottlePolicy::None)
    }

    pub const fn dyncta() -> Self {
        Policy::new(ArbPolicy::Fifo, ThrottlePolicy::Dyncta)
    }

    pub const fn lcs() -> Self {
        Policy::new(ArbPolicy::Fifo, ThrottlePolicy::Lcs)
    }

    pub const fn dynmg() -> Self {
        Policy::new(ArbPolicy::Fifo, ThrottlePolicy::DynMg)
    }

    pub const fn cobrra() -> Self {
        Policy::new(ArbPolicy::Cobrra, ThrottlePolicy::None)
    }

    pub const fn dynmg_b() -> Self {
        Policy::new(ArbPolicy::Balanced, ThrottlePolicy::DynMg)
    }

    pub const fn dynmg_ma() -> Self {
        Policy::new(ArbPolicy::MshrAware, ThrottlePolicy::DynMg)
    }

    /// The paper's final policy.
    pub const fn dynmg_bma() -> Self {
        Policy::new(ArbPolicy::BalancedMshrAware, ThrottlePolicy::DynMg)
    }

    pub const fn dynmg_cobrra() -> Self {
        Policy::new(ArbPolicy::Cobrra, ThrottlePolicy::DynMg)
    }

    /// The open-world spec this pair stands for.
    pub fn spec(&self) -> PolicySpec {
        PolicySpec::new(self.arb.spec(), self.throttle.spec())
    }

    /// Figure-style label, e.g. "dynmg+BMA".
    pub fn label(&self) -> String {
        self.spec().label()
    }
}

impl From<Policy> for PolicySpec {
    fn from(p: Policy) -> PolicySpec {
        p.spec()
    }
}

/// A failed experiment setup or run (degenerate inputs are rejected
/// with explicit errors rather than producing silent nonsense).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// The workload's shape failed validation.
    InvalidWorkload(String),
    /// The mapping does not legally tile the workload.
    InvalidMapping(String),
    /// The generated trace moves zero bytes — nothing to simulate, and
    /// the cycle-budget heuristic would be meaningless.
    EmptyTrace { workload: String },
    /// A serving mix failed validation or composition (zero requests,
    /// zero seq_len, more partitioned requests than cores, …).
    InvalidMix(String),
    /// An open-system serve scenario failed validation or composition
    /// (zero requests, invalid arrival schedule, more continuous-batching
    /// slots than cores, …).
    InvalidServe(String),
    /// A tiered KV store failed validation (zero warm capacity,
    /// zero-byte blocks, a dead slow-tier link, …).
    InvalidKv(String),
    /// An explicit cycle budget of zero can never complete.
    ZeroCycleBudget,
    /// A speedup ratio against a zero-cycle run is undefined.
    ZeroCycleSpeedup { detail: String },
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::InvalidWorkload(msg) => write!(f, "invalid workload: {msg}"),
            ExperimentError::InvalidMapping(msg) => write!(f, "invalid mapping: {msg}"),
            ExperimentError::EmptyTrace { workload } => {
                write!(f, "workload `{workload}` generated a zero-byte trace")
            }
            ExperimentError::InvalidMix(msg) => write!(f, "invalid mix: {msg}"),
            ExperimentError::InvalidServe(msg) => write!(f, "invalid serve scenario: {msg}"),
            ExperimentError::InvalidKv(msg) => write!(f, "invalid kv tier: {msg}"),
            ExperimentError::ZeroCycleBudget => write!(f, "explicit cycle budget is zero"),
            ExperimentError::ZeroCycleSpeedup { detail } => {
                write!(f, "speedup undefined: {detail}")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

/// One experiment: workload, policy and machine overrides.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// The operator under test (open world — see
    /// [`llamcat_trace::workloads`]). For mix experiments this holds
    /// the first request's workload; the trace comes from `mix`.
    pub workload: Arc<dyn Workload>,
    /// Multi-tenant serving mix; when set, the trace is the mix's
    /// request-tagged composition instead of the solo `workload`.
    pub mix: Option<WorkloadMix>,
    /// Open-system serve scenario; when set, requests are injected
    /// mid-run by a [`RequestInjector`] under the scenario's arrival
    /// schedule and serving policy instead of being scheduled up front.
    pub serve: Option<ServeSpec>,
    /// Tiered KV store; when set, KV-tensor DRAM reads gate on the warm
    /// tier (see [`llamcat_sim::kv`]) and the report carries per-request
    /// KV hit/promotion/eviction counters.
    pub kv: Option<KvSpec>,
    pub policy: PolicySpec,
    pub config: SystemConfig,
    pub tracegen: TraceGenConfig,
    /// Dataflow layout (paper default: output-partitioned pair streams,
    /// [`Layout::PairStream`]).
    pub layout: Layout,
    /// L-dimension tile per thread block (32 = one output line).
    pub l_tile: usize,
    /// Hard cycle budget; `None` derives one from the workload size.
    pub max_cycles: Option<u64>,
    /// How the simulator advances time. [`StepMode::Skip`] fast-forwards
    /// provably idle cycles and is byte-identical to
    /// [`StepMode::Cycle`] in every statistic (the differential suite
    /// `crates/sim/tests/step_mode_equiv.rs` pins this across the whole
    /// policy grid); `Cycle` remains the default reference mode.
    pub step_mode: StepMode,
}

impl Experiment {
    /// Preset shim: the paper's Logit operator for one model shape.
    pub fn new(model: Model, seq_len: usize) -> Self {
        Experiment::with_workload(model.workload(seq_len))
    }

    /// An experiment over any [`Workload`] on the Table 5 machine.
    pub fn with_workload(workload: Arc<dyn Workload>) -> Self {
        let config = SystemConfig::table5();
        Experiment {
            workload,
            mix: None,
            serve: None,
            kv: None,
            policy: PolicySpec::unoptimized(),
            tracegen: TraceGenConfig {
                num_cores: config.num_cores,
                vector_len_bytes: config.core.vector_len_bytes,
                ..Default::default()
            },
            config,
            layout: Layout::default(),
            l_tile: 32,
            max_cycles: None,
            step_mode: StepMode::default(),
        }
    }

    /// Instantiates a serialized workload family at one sequence length.
    pub fn from_spec(workload: &WorkloadSpec, seq_len: usize) -> Self {
        Experiment::with_workload(workload.instantiate(seq_len))
    }

    /// An experiment over a multi-tenant serving mix. The mix must hold
    /// at least one request ([`Experiment::try_run`] rejects empty
    /// mixes gracefully; this constructor panics on them).
    pub fn with_mix(mix: WorkloadMix) -> Self {
        let first = mix
            .requests
            .first()
            .expect("mix must hold at least one request")
            .workload
            .clone();
        let mut e = Experiment::with_workload(first);
        e.mix = Some(mix);
        e
    }

    /// Instantiates a serialized [`MixSpec`].
    pub fn from_mix_spec(spec: &MixSpec) -> Result<Self, ExperimentError> {
        spec.validate().map_err(ExperimentError::InvalidMix)?;
        Ok(Experiment::with_mix(spec.instantiate()))
    }

    /// Instantiates a serialized open-system [`ServeSpec`]: requests
    /// arrive mid-run under the scenario's seeded arrival schedule and
    /// are admitted by its serving policy.
    pub fn from_serve_spec(spec: &ServeSpec) -> Result<Self, ExperimentError> {
        let mut e = Experiment::with_workload(spec.workload.instantiate(spec.seq_len));
        spec.validate(e.config.num_cores)
            .map_err(ExperimentError::InvalidServe)?;
        e.serve = Some(spec.clone());
        Ok(e)
    }

    pub fn policy(mut self, policy: impl Into<PolicySpec>) -> Self {
        self.policy = policy.into();
        self
    }

    /// Attaches a tiered KV store below the LLC.
    pub fn kv(mut self, kv: KvSpec) -> Self {
        self.kv = Some(kv);
        self
    }

    /// Overrides total L2 capacity (Fig 9 sweeps 16/32/64 MB).
    pub fn l2_mb(mut self, mb: u64) -> Self {
        self.config = self.config.with_l2_mb(mb);
        self
    }

    /// Replaces the whole machine configuration.
    pub fn config(mut self, config: SystemConfig) -> Self {
        self.tracegen.num_cores = config.num_cores;
        self.tracegen.vector_len_bytes = config.core.vector_len_bytes;
        self.config = config;
        self
    }

    pub fn layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    pub fn max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = Some(cycles);
        self
    }

    /// Selects the simulation step mode (default: cycle-accurate).
    pub fn step_mode(mut self, mode: StepMode) -> Self {
        self.step_mode = mode;
        self
    }

    /// Composes the serve scenario's trace and its request injector.
    fn serve_program(
        &self,
        spec: &ServeSpec,
    ) -> Result<(Program, u64, RequestInjector), ExperimentError> {
        spec.validate(self.config.num_cores)
            .map_err(ExperimentError::InvalidServe)?;
        let requests: Vec<Arc<dyn Workload>> =
            vec![spec.workload.instantiate(spec.seq_len); spec.num_requests];
        let (program, meta) = generate_serve_set(
            &requests,
            spec.cores_per_request(self.config.num_cores),
            self.layout,
            self.l_tile,
            &self.tracegen,
        )
        .map_err(ExperimentError::InvalidServe)?;
        if meta.total_load_bytes == 0 {
            return Err(ExperimentError::EmptyTrace {
                workload: spec.label(),
            });
        }
        let arrivals = spec.request_arrivals();
        let last_arrival = arrivals.last().copied().unwrap_or(0);
        let budget = match self.max_cycles {
            Some(0) => return Err(ExperimentError::ZeroCycleBudget),
            Some(cycles) => cycles,
            None => last_arrival + meta.total_load_bytes / 4 + 20_000_000,
        };
        let mut injector = RequestInjector::new(
            &program,
            arrivals,
            spec.scheduler.to_sim(),
            self.config.num_cores,
            self.config.core.num_inst_windows,
        )
        .map_err(ExperimentError::InvalidServe)?;
        if !spec.classes.is_empty() {
            injector = injector
                .with_classes(spec.padded_classes())
                .map_err(ExperimentError::InvalidServe)?;
        }
        Ok((program, budget, injector))
    }

    fn checked_program(&self) -> Result<(Program, u64, Option<RequestInjector>), ExperimentError> {
        if let Some(spec) = &self.serve {
            let (program, budget, injector) = self.serve_program(spec)?;
            return Ok((program, budget, Some(injector)));
        }
        if let Some(mix) = &self.mix {
            let (program, meta) = mix
                .generate(self.layout, self.l_tile, &self.tracegen)
                .map_err(ExperimentError::InvalidMix)?;
            if meta.total_load_bytes == 0 {
                return Err(ExperimentError::EmptyTrace {
                    workload: mix.label(),
                });
            }
            let latest_arrival = mix.requests.iter().map(|r| r.arrival).max().unwrap_or(0);
            let budget = match self.max_cycles {
                Some(0) => return Err(ExperimentError::ZeroCycleBudget),
                Some(cycles) => cycles,
                None => latest_arrival + meta.total_load_bytes / 4 + 20_000_000,
            };
            return Ok((program, budget, None));
        }
        self.workload
            .validate()
            .map_err(ExperimentError::InvalidWorkload)?;
        let shape = self.workload.shape();
        if !shape.seq_len.is_multiple_of(self.l_tile.max(1)) || self.l_tile == 0 {
            return Err(ExperimentError::InvalidMapping(format!(
                "l_tile {} must divide seq_len {}",
                self.l_tile, shape.seq_len
            )));
        }
        let mapping = self
            .workload
            .mapping(self.layout, self.l_tile, self.config.num_cores);
        mapping
            .validate(&shape)
            .map_err(ExperimentError::InvalidMapping)?;
        let (program, meta) = self.workload.generate(&mapping, &self.tracegen);
        if meta.total_load_bytes == 0 {
            return Err(ExperimentError::EmptyTrace {
                workload: self.workload.label(),
            });
        }
        // Budget: assume the machine can be no slower than 4 bytes of
        // load traffic per cycle overall, plus fixed slack.
        let budget = match self.max_cycles {
            Some(0) => return Err(ExperimentError::ZeroCycleBudget),
            Some(cycles) => cycles,
            None => meta.total_load_bytes / 4 + 20_000_000,
        };
        Ok((program, budget, None))
    }

    /// Generates the trace for this experiment (exposed for inspection).
    ///
    /// Panics on invalid workload/mapping; [`Experiment::try_run`]
    /// reports those gracefully.
    pub fn build_program(&self) -> Program {
        if let Some(spec) = &self.serve {
            let (program, _, _) = self.serve_program(spec).expect("serve set must compose");
            return program;
        }
        if let Some(mix) = &self.mix {
            let (program, _) = mix
                .generate(self.layout, self.l_tile, &self.tracegen)
                .expect("mix must compose");
            return program;
        }
        let mapping = self
            .workload
            .mapping(self.layout, self.l_tile, self.config.num_cores);
        let (program, _) = self.workload.generate(&mapping, &self.tracegen);
        program
    }

    /// Runs the experiment to completion, rejecting degenerate inputs.
    ///
    /// The system is built over the closed-world policy enums
    /// (`System<ArbiterKind, ThrottleKind>`), so the whole tick loop
    /// monomorphizes — the `Box<dyn ...>` construction path survives
    /// only for callers wiring policies outside the registry.
    pub fn try_run(&self) -> Result<RunReport, ExperimentError> {
        if let Some(kv) = &self.kv {
            kv.validate().map_err(ExperimentError::InvalidKv)?;
        }
        let (program, budget, injector) = self.checked_program()?;
        let arb = self.policy.arb.clone();
        let mut system = System::new(
            self.config,
            program,
            &move |_slice| arb.build_kind(),
            self.policy.throttle.build_kind(),
        );
        if let Some(injector) = injector {
            system.attach_injector(injector);
        }
        if let Some(kv) = &self.kv {
            system.attach_kv(kv.to_config());
        }
        let (stats, outcome) = system.run_with_mode(budget, self.step_mode);
        Ok(RunReport::from_stats(self, stats, outcome))
    }

    /// Builds this experiment's scenario — trace generation, program
    /// mapping, flat-program build, component preallocation, injector
    /// and KV tier — once, and freezes it pre-tick as a policy-neutral
    /// base snapshot. [`Experiment::run_forked`] then stamps any policy
    /// onto an independent fork.
    ///
    /// The experiment's own `policy` is ignored: everything captured is
    /// policy independent. Policies influence behaviour from the very
    /// first cycle (the throttle's sweep runs at cycle 0), so the
    /// snapshot is taken before any tick — the amortized work is the
    /// expensive scenario build, not simulated cycles.
    pub fn snapshot_scenario(&self) -> Result<ScenarioSnapshot, ExperimentError> {
        if let Some(kv) = &self.kv {
            kv.validate().map_err(ExperimentError::InvalidKv)?;
        }
        let (program, budget, injector) = self.checked_program()?;
        let mut system = System::new(
            self.config,
            program,
            &|_slice| ArbSpec::Fifo.build_kind(),
            ThrottleSpec::None.build_kind(),
        );
        if let Some(injector) = injector {
            system.attach_injector(injector);
        }
        if let Some(kv) = &self.kv {
            system.attach_kv(kv.to_config());
        }
        Ok(ScenarioSnapshot {
            state: SystemState::from(system),
            budget,
        })
    }

    /// Runs this experiment on a fork of `base` instead of building the
    /// scenario from scratch: the fork swaps in this experiment's
    /// policies (fresh, reset exactly as construction would) and runs
    /// under the snapshot's cycle budget.
    ///
    /// `base` must have been produced by [`Experiment::snapshot_scenario`]
    /// on an experiment identical up to `policy` and `step_mode`; the
    /// result is then byte-identical to [`Experiment::try_run`]
    /// (`crates/bench` pins this across the golden campaign matrix).
    pub fn run_forked(&self, base: &ScenarioSnapshot) -> Result<RunReport, ExperimentError> {
        let mut system = base.state.fork();
        let arb = self.policy.arb.clone();
        system.replace_policies(
            &move |_slice| arb.build_kind(),
            self.policy.throttle.build_kind(),
        );
        let (stats, outcome) = system.run_with_mode(base.budget, self.step_mode);
        Ok(RunReport::from_stats(self, stats, outcome))
    }

    /// Runs a whole policy grid over one scenario as a lockstep batch:
    /// every cell is forked off `base` exactly as
    /// [`Experiment::run_forked`] would fork it, then all cells advance
    /// together through [`SystemBatch`] so the scenario's `Arc`-shared
    /// immutable state (decoded trace, flat program, arrival schedule,
    /// inject plans) is streamed through the cache once per lockstep
    /// window instead of once per cell.
    ///
    /// Reports come back in `cells` order and are byte-identical to
    /// each cell's own [`Experiment::run_forked`] (and therefore
    /// [`Experiment::try_run`]) result — `crates/sim/tests/batch_equiv.rs`
    /// pins this across the golden policy matrix in both step modes.
    /// Cells may mix step modes; each runs under the snapshot's budget.
    ///
    /// Like [`Experiment::run_forked`], every cell must be identical to
    /// the snapshot's experiment up to `policy` and `step_mode`.
    pub fn run_forked_batch(cells: &[Experiment], base: &ScenarioSnapshot) -> Vec<RunReport> {
        Self::run_forked_batch_with_stride(cells, base, llamcat_sim::batch::DEFAULT_STRIDE)
    }

    /// [`Experiment::run_forked_batch`] with an explicit lockstep
    /// window (see [`llamcat_sim::batch::DEFAULT_STRIDE`] for the
    /// trade-off).
    pub fn run_forked_batch_with_stride(
        cells: &[Experiment],
        base: &ScenarioSnapshot,
        stride: u64,
    ) -> Vec<RunReport> {
        let mut batch = SystemBatch::with_stride(stride);
        for cell in cells {
            let mut system = base.state.fork();
            let arb = cell.policy.arb.clone();
            system.replace_policies(
                &move |_slice| arb.build_kind(),
                cell.policy.throttle.build_kind(),
            );
            batch.push(system, base.budget, cell.step_mode);
        }
        batch
            .run()
            .into_iter()
            .zip(cells)
            .map(|((stats, outcome), cell)| RunReport::from_stats(cell, stats, outcome))
            .collect()
    }

    /// Runs the experiment to completion.
    ///
    /// Panics on degenerate inputs (invalid shape, zero-byte trace,
    /// zero cycle budget); use [`Experiment::try_run`] for a graceful
    /// error.
    pub fn run(&self) -> RunReport {
        match self.try_run() {
            Ok(report) => report,
            Err(e) => panic!("experiment failed: {e}"),
        }
    }
}

/// A policy-neutral, pre-tick base system for one scenario — the
/// workload/mix/serve/KV/machine combination, everything except the
/// policy pair — produced by [`Experiment::snapshot_scenario`] and
/// forked (any number of times) by [`Experiment::run_forked`].
///
/// This is the campaign warm-up-and-fork fast path: grid cells sharing
/// a scenario pay trace generation and system construction once instead
/// of once per policy.
pub struct ScenarioSnapshot {
    state: SystemState<ArbiterKind, ThrottleKind>,
    budget: u64,
}

impl ScenarioSnapshot {
    /// The cycle budget derived for (or configured on) the scenario.
    pub fn budget(&self) -> u64 {
        self.budget
    }
}

/// Per-request (tenant) results of one run: completion timing plus the
/// request's LLC interference profile. Solo runs report exactly one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestReport {
    /// Request id (index into the mix, 0 for solo runs).
    pub request: u32,
    /// The request's workload label.
    pub label: String,
    /// Cycle at which the request arrived.
    pub arrival: u64,
    /// Whether every thread block of the request retired in budget.
    pub completed: bool,
    /// Cycles from arrival to the retirement of the request's last
    /// thread block (0 when not completed).
    pub cycles: u64,
    /// Cycle at which a serving scheduler admitted the request to the
    /// machine (equals `arrival` for closed runs; `None` when the run
    /// ended with the request still queued).
    #[serde(default)]
    pub admitted: Option<u64>,
    /// Time to first token: cycles from arrival to the first retired
    /// thread block (`None` until one retires).
    #[serde(default)]
    pub ttft: Option<u64>,
    /// Mean time between tokens: cycles per thread block after the
    /// first (`None` unless the request completed with >= 2 blocks).
    #[serde(default)]
    pub mean_tbt: Option<f64>,
    /// Cycles the request waited in the admission queue (0 for closed
    /// runs; `None` when never admitted).
    #[serde(default)]
    pub queue_delay: Option<u64>,
    /// Cycle at which the admission policy terminally rejected or
    /// deadline-dropped the request (`None` everywhere else; a rejected
    /// request never admits and never completes).
    #[serde(default)]
    pub rejected: Option<u64>,
    /// Times the request was preempted (its unissued blocks withdrawn
    /// back to the admission queue by a higher-class arrival).
    #[serde(default)]
    pub preemptions: u32,
    /// Serving priority class (0 = best-effort).
    #[serde(default)]
    pub class: u8,
    /// Verdict against the scenario's SLO (`None` when no SLO was
    /// configured).
    #[serde(default)]
    pub slo: Option<SloOutcome>,
    pub blocks_total: u64,
    pub blocks_completed: u64,
    /// LLC lookups attributed to the request.
    pub llc_lookups: u64,
    pub llc_hits: u64,
    pub llc_misses: u64,
    pub mshr_merges: u64,
    /// LLC pipeline stall cycles charged to the request.
    pub llc_stall_cycles: u64,
    /// KV-tier lookups attributed to the request (0 without a tier).
    #[serde(default)]
    pub kv_lookups: u64,
    /// Warm-tier hits.
    #[serde(default)]
    pub kv_hits: u64,
    /// Cold misses that started a promotion from the slow tier.
    #[serde(default)]
    pub kv_misses: u64,
    /// Reads merged into an already-in-flight promotion.
    #[serde(default)]
    pub kv_merges: u64,
    /// Warm blocks of this request evicted under capacity pressure.
    #[serde(default)]
    pub kv_evictions: u64,
}

impl RequestReport {
    /// The request's own L2 hit rate.
    pub fn l2_hit_rate(&self) -> f64 {
        if self.llc_lookups == 0 {
            return 0.0;
        }
        self.llc_hits as f64 / self.llc_lookups as f64
    }

    /// The request's own warm-tier KV hit rate (0 without a tier).
    pub fn kv_hit_rate(&self) -> f64 {
        if self.kv_lookups == 0 {
            return 0.0;
        }
        self.kv_hits as f64 / self.kv_lookups as f64
    }
}

/// Run-level SLO attainment: how much of the offered load turned into
/// *useful* (deadline-meeting) completions. The serving literature's
/// goodput metric, in simulator units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// The TTFT deadline the verdicts were judged against (cycles).
    pub ttft_deadline: u64,
    /// The mean-TBT deadline, when one was configured.
    #[serde(default)]
    pub tbt_deadline: Option<u64>,
    /// Requests that completed within every deadline.
    pub met: usize,
    /// Admitted (or still queued) requests that blew a deadline or
    /// never finished in budget.
    pub missed: usize,
    /// Requests terminally rejected or deadline-dropped by the
    /// admission policy.
    pub rejected: usize,
    /// `met / num_requests` — the SLO attainment fraction.
    pub attainment: f64,
    /// SLO-met completions per million cycles — goodput. Comparable
    /// across policies at a fixed arrival schedule: admission control
    /// trades raw throughput for goodput under overload.
    pub goodput_per_mcycle: f64,
}

/// Results of one experiment, with the metrics the paper plots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    pub policy_label: String,
    pub workload_label: String,
    pub seq_len: usize,
    pub l2_mb: u64,
    pub completed: bool,
    /// Execution cycles (lower is better; speedups are ratios of these).
    pub cycles: u64,
    pub l2_hit_rate: f64,
    /// Merges / cache misses (the paper's MSHR hit rate).
    pub mshr_hit_rate: f64,
    /// Mean numEntry occupancy fraction.
    pub mshr_entry_util: f64,
    pub dram_bandwidth_gbs: f64,
    pub dram_accesses: u64,
    /// Proportion of cache-stall cycles.
    pub t_cs: f64,
    pub l1_hit_rate: f64,
    pub mean_load_latency: f64,
    pub tb_migrations: u64,
    pub row_hit_rate: f64,
    /// Per-request (tenant) breakdowns, in request order. Solo runs
    /// carry exactly one entry.
    #[serde(default)]
    pub requests: Vec<RequestReport>,
    /// SLO attainment and goodput (`None` unless the serve scenario
    /// configured an [`crate::spec::SloSpec`]).
    #[serde(default)]
    pub slo: Option<SloReport>,
    /// KV-tier totals (`None` when no tier was attached).
    #[serde(default)]
    pub kv: Option<KvTierStats>,
    /// Full component statistics for deep dives.
    #[serde(skip)]
    pub stats: Option<SimStats>,
}

impl RunReport {
    fn from_stats(exp: &Experiment, stats: SimStats, outcome: RunOutcome) -> Self {
        let request_label = |i: usize| -> String {
            match &exp.mix {
                Some(mix) => mix.requests[i].workload.label(),
                None => exp.workload.label(),
            }
        };
        let slo_spec = exp.serve.as_ref().and_then(|s| s.slo);
        let requests: Vec<RequestReport> = stats
            .requests
            .iter()
            .enumerate()
            .map(|(i, r)| RequestReport {
                request: i as u32,
                label: request_label(i),
                arrival: r.arrival,
                completed: r.completed,
                cycles: r.cycles_to_completion(),
                admitted: r.admitted,
                ttft: r.ttft(),
                mean_tbt: r.mean_tbt(),
                queue_delay: r.queue_delay(),
                rejected: r.rejected,
                preemptions: r.preemptions,
                class: r.class,
                slo: slo_spec.map(|s| r.slo_outcome(s.ttft_deadline, s.tbt_deadline)),
                blocks_total: r.blocks_total,
                blocks_completed: r.blocks_completed,
                llc_lookups: r.llc.lookups,
                llc_hits: r.llc.hits,
                llc_misses: r.llc.misses,
                mshr_merges: r.llc.mshr_merges,
                llc_stall_cycles: r.llc.stall_cycles,
                kv_lookups: r.kv.lookups,
                kv_hits: r.kv.hits,
                kv_misses: r.kv.misses,
                kv_merges: r.kv.merges,
                kv_evictions: r.kv.evictions,
            })
            .collect();
        let slo = slo_spec.map(|s| {
            let count = |o: SloOutcome| requests.iter().filter(|r| r.slo == Some(o)).count();
            let (met, missed, rejected) = (
                count(SloOutcome::Met),
                count(SloOutcome::Missed),
                count(SloOutcome::Rejected),
            );
            let total = requests.len().max(1);
            SloReport {
                ttft_deadline: s.ttft_deadline,
                tbt_deadline: s.tbt_deadline,
                met,
                missed,
                rejected,
                attainment: met as f64 / total as f64,
                goodput_per_mcycle: if stats.cycles == 0 {
                    0.0
                } else {
                    met as f64 * 1e6 / stats.cycles as f64
                },
            }
        });
        let (workload_label, seq_len) = if let Some(spec) = &exp.serve {
            (spec.label(), spec.seq_len)
        } else {
            match &exp.mix {
                Some(mix) => (
                    mix.label(),
                    mix.requests
                        .iter()
                        .map(|r| r.workload.shape().seq_len)
                        .max()
                        .unwrap_or(0),
                ),
                None => (exp.workload.label(), exp.workload.shape().seq_len),
            }
        };
        RunReport {
            policy_label: exp.policy.label(),
            workload_label,
            seq_len,
            l2_mb: exp.config.l2.capacity_bytes / (1024 * 1024),
            completed: outcome.is_complete(),
            cycles: stats.cycles,
            l2_hit_rate: stats.l2_hit_rate(),
            mshr_hit_rate: stats.mshr_hit_rate(),
            mshr_entry_util: stats.mshr_entry_util(exp.config.l2.mshr_entries),
            dram_bandwidth_gbs: stats.dram_bandwidth_gbs(),
            dram_accesses: stats.dram_accesses(),
            t_cs: stats.t_cs(),
            l1_hit_rate: stats.l1_hit_rate(),
            mean_load_latency: stats.mean_load_latency(),
            tb_migrations: stats.tb_migrations,
            row_hit_rate: stats.row_hit_rate(),
            requests,
            slo,
            kv: stats.kv.clone(),
            stats: Some(stats),
        }
    }

    /// Speedup of `self` relative to `baseline` (cycles ratio),
    /// rejecting zero-cycle degenerate inputs.
    pub fn try_speedup_over(&self, baseline: &RunReport) -> Result<f64, ExperimentError> {
        if baseline.cycles == 0 || self.cycles == 0 {
            return Err(ExperimentError::ZeroCycleSpeedup {
                detail: format!(
                    "baseline `{}` ran {} cycles, `{}` ran {} cycles",
                    baseline.policy_label, baseline.cycles, self.policy_label, self.cycles
                ),
            });
        }
        Ok(baseline.cycles as f64 / self.cycles as f64)
    }

    /// Speedup of `self` relative to `baseline` (cycles ratio).
    ///
    /// Panics if either run recorded zero cycles; use
    /// [`RunReport::try_speedup_over`] for a graceful error.
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        match self.try_speedup_over(baseline) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }
}

/// Geometric mean of a slice of speedups (the paper's summary
/// statistic). Empty input yields 0.0 (an impossible speedup,
/// deliberately conspicuous).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamcat_trace::workloads::{AttnOutputWorkload, PrefillLogitWorkload};

    #[test]
    fn policy_labels_match_figures() {
        assert_eq!(Policy::unoptimized().label(), "unoptimized");
        assert_eq!(Policy::dynmg().label(), "dynmg");
        assert_eq!(Policy::dynmg_bma().label(), "dynmg+BMA");
        assert_eq!(Policy::dynmg_cobrra().label(), "dynmg+cobrra");
        assert_eq!(Policy::cobrra().label(), "cobrra");
        assert_eq!(Policy::lcs().label(), "lcs");
    }

    #[test]
    fn geomean_math() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn tiny_experiment_completes() {
        let report = Experiment::new(Model::Llama3_70b, 128).run();
        assert!(report.completed, "tiny workload must finish");
        assert!(report.cycles > 0);
        assert!(report.dram_accesses > 0);
        assert_eq!(report.l2_mb, 16);
        assert_eq!(report.workload_label, "llama3 70b");
    }

    #[test]
    fn open_workloads_run_through_the_same_api() {
        let op = LogitOp {
            heads: 2,
            group_size: 4,
            seq_len: 128,
            head_dim: 128,
        };
        let av = Experiment::with_workload(Arc::new(AttnOutputWorkload::new(op)))
            .policy(Policy::dynmg_bma())
            .run();
        assert!(av.completed);
        assert_eq!(av.workload_label, "attn-out h2 g4 d128");

        let pf = Experiment::with_workload(Arc::new(PrefillLogitWorkload::new(op, 4))).run();
        assert!(pf.completed);
        assert!(pf.cycles > 0);
    }

    #[test]
    fn policies_produce_different_machines_but_same_work() {
        let base = Experiment::new(Model::Llama3_70b, 128);
        let a = base.clone().policy(Policy::unoptimized()).run();
        let b = base.policy(Policy::dynmg_bma()).run();
        assert!(a.completed && b.completed);
        // Same trace: store traffic identical (reads may differ by reuse).
        let sa = a.stats.as_ref().unwrap();
        let sb = b.stats.as_ref().unwrap();
        let stores = |s: &SimStats| -> u64 { s.cores.iter().map(|c| c.stores).sum() };
        assert_eq!(stores(sa), stores(sb));
    }

    #[test]
    fn l2_size_override() {
        let e = Experiment::new(Model::Llama3_70b, 128).l2_mb(32);
        assert_eq!(e.config.l2.capacity_bytes, 32 * 1024 * 1024);
    }

    #[test]
    fn run_is_deterministic() {
        let mk = || {
            Experiment::new(Model::Llama3_405b, 128)
                .policy(Policy::dynmg_bma())
                .run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.dram_accesses, b.dram_accesses);
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        // Zero-cycle budget.
        let err = Experiment::new(Model::Llama3_70b, 128)
            .max_cycles(0)
            .try_run()
            .unwrap_err();
        assert_eq!(err, ExperimentError::ZeroCycleBudget);

        // Invalid shape (zero-dim operator would produce an empty trace).
        let bad = LogitOp {
            heads: 0,
            group_size: 1,
            seq_len: 128,
            head_dim: 128,
        };
        let err = Experiment::with_workload(Arc::new(LogitWorkload::new(bad)))
            .try_run()
            .unwrap_err();
        assert!(matches!(err, ExperimentError::InvalidWorkload(_)));

        // l_tile not dividing seq_len.
        let mut e = Experiment::new(Model::Llama3_70b, 128);
        e.l_tile = 48;
        assert!(matches!(
            e.try_run().unwrap_err(),
            ExperimentError::InvalidMapping(_)
        ));
    }

    #[test]
    fn solo_runs_report_one_request() {
        let report = Experiment::new(Model::Llama3_70b, 128).run();
        assert_eq!(report.requests.len(), 1);
        let r = &report.requests[0];
        assert!(r.completed);
        assert_eq!(r.request, 0);
        assert_eq!(r.label, "llama3 70b");
        assert_eq!(r.blocks_completed, r.blocks_total);
        assert!(r.cycles > 0 && r.cycles <= report.cycles);
        assert_eq!(
            r.llc_lookups,
            report.stats.as_ref().unwrap().l2_lookups(),
            "solo run: request 0 owns every lookup"
        );
    }

    #[test]
    fn mix_experiment_reports_per_request_completion() {
        use crate::spec::MixSpec;
        let spec = MixSpec::interleaved()
            .request(WorkloadSpec::llama3_70b(), 128, 0)
            .request(
                WorkloadSpec::PrefillLogit {
                    heads: 8,
                    group_size: 8,
                    head_dim: 128,
                    query_tokens: 4,
                },
                128,
                0,
            );
        let report = Experiment::from_mix_spec(&spec).unwrap().run();
        assert!(report.completed);
        assert_eq!(report.requests.len(), 2);
        assert_eq!(report.requests[0].label, "llama3 70b");
        assert_eq!(report.requests[1].label, "prefill h8 g8 d128 q4");
        let stats = report.stats.as_ref().unwrap();
        stats.check_consistency().unwrap();
        for r in &report.requests {
            assert!(r.completed);
            assert!(r.cycles > 0);
            assert!(r.llc_lookups > 0, "both tenants reached the LLC");
        }
        // The machine finishes when the slower tenant does (both start
        // at cycle 0, so the slower tenant bounds the run).
        let slowest = report.requests.iter().map(|r| r.cycles).max().unwrap();
        assert!(slowest <= report.cycles);
    }

    #[test]
    fn staggered_arrival_delays_a_request() {
        use crate::spec::MixSpec;
        let arrival = 50_000;
        let spec = MixSpec::partitioned()
            .request(WorkloadSpec::llama3_70b(), 128, 0)
            .request(WorkloadSpec::llama3_70b(), 128, arrival);
        let report = Experiment::from_mix_spec(&spec).unwrap().run();
        assert!(report.completed);
        let late = &report.requests[1];
        assert_eq!(late.arrival, arrival);
        assert!(
            report.cycles >= arrival,
            "the run cannot end before the late tenant arrives"
        );
        assert!(late.completed && late.cycles > 0);
    }

    #[test]
    fn degenerate_mixes_rejected_at_experiment_level() {
        use crate::spec::MixSpec;
        assert!(matches!(
            Experiment::from_mix_spec(&MixSpec::partitioned()).unwrap_err(),
            ExperimentError::InvalidMix(_)
        ));
        let zero_seq = MixSpec::partitioned().request(WorkloadSpec::llama3_70b(), 0, 0);
        assert!(Experiment::from_mix_spec(&zero_seq).is_err());
        // More partitioned tenants than cores is caught at run time.
        let mut spec = MixSpec::partitioned();
        for _ in 0..17 {
            spec = spec.request(WorkloadSpec::llama3_70b(), 128, 0);
        }
        let e = Experiment::from_mix_spec(&spec).unwrap();
        assert!(matches!(
            e.try_run().unwrap_err(),
            ExperimentError::InvalidMix(_)
        ));
    }

    #[test]
    fn serve_experiment_tracks_latencies_and_matches_modes() {
        use crate::spec::{ArrivalSpec, ServePolicySpec, ServeSpec};
        let spec = ServeSpec::new(
            WorkloadSpec::llama3_70b(),
            128,
            3,
            ArrivalSpec::Fixed {
                period: 2_000,
                start: 0,
            },
        )
        .scheduler(ServePolicySpec::ContinuousBatching { slots: 2 });
        let exp = Experiment::from_serve_spec(&spec)
            .unwrap()
            .policy(Policy::dynmg_bma());
        let cycle = exp.clone().step_mode(StepMode::Cycle).run();
        let skip = exp.step_mode(StepMode::Skip).run();
        assert!(cycle.completed);
        assert_eq!(cycle.requests.len(), 3);
        for (c, s) in cycle.requests.iter().zip(&skip.requests) {
            assert_eq!(c, s, "Skip must report byte-identical request stats");
            assert!(c.completed);
            let admitted = c.admitted.expect("admitted");
            assert!(admitted >= c.arrival);
            assert_eq!(c.queue_delay, Some(admitted - c.arrival));
            assert!(c.ttft.expect("ttft") >= 1);
            assert!(c.mean_tbt.expect("tbt") > 0.0);
        }
        assert_eq!(cycle.cycles, skip.cycles);
        assert!(cycle.workload_label.starts_with("serve:cb2["));
    }

    #[test]
    fn degenerate_serves_rejected_at_experiment_level() {
        use crate::spec::{ArrivalSpec, ServePolicySpec, ServeSpec};
        let base = ServeSpec::new(
            WorkloadSpec::llama3_70b(),
            128,
            2,
            ArrivalSpec::Fixed {
                period: 100,
                start: 0,
            },
        );
        let zero = ServeSpec {
            num_requests: 0,
            ..base.clone()
        };
        assert!(matches!(
            Experiment::from_serve_spec(&zero).unwrap_err(),
            ExperimentError::InvalidServe(_)
        ));
        // Too many slots for the machine is caught against the actual
        // config at run time even if the spec was built elsewhere.
        let mut e = Experiment::from_serve_spec(&base).unwrap();
        e.serve = Some(base.scheduler(ServePolicySpec::ContinuousBatching { slots: 999 }));
        assert!(matches!(
            e.try_run().unwrap_err(),
            ExperimentError::InvalidServe(_)
        ));
    }

    #[test]
    fn kv_tier_attaches_reports_counters_and_matches_modes() {
        let base = Experiment::new(Model::Llama3_70b, 128)
            .policy(Policy::dynmg_bma())
            .kv(KvSpec::lru(16));
        let cycle = base.clone().step_mode(StepMode::Cycle).run();
        let skip = base.step_mode(StepMode::Skip).run();
        assert!(cycle.completed);
        let kv = cycle.kv.as_ref().expect("tier totals present");
        assert!(kv.lookups > 0, "KV tensors reached the tier");
        assert!(kv.promotions > 0, "a 16-block warm tier must promote");
        assert_eq!(kv.lookups, kv.hits + kv.misses + kv.merges);
        // Per-request counters surface in the report and partition the
        // totals (solo run: request 0 owns everything).
        let r = &cycle.requests[0];
        assert_eq!(r.kv_lookups, kv.lookups);
        assert_eq!(r.kv_hits, kv.hits);
        assert!(r.kv_hit_rate() > 0.0);
        cycle.stats.as_ref().unwrap().check_consistency().unwrap();
        // Skip mode is byte-identical with the tier attached.
        assert_eq!(cycle.cycles, skip.cycles);
        assert_eq!(cycle.kv, skip.kv);
        assert_eq!(cycle.requests, skip.requests);
        // The tier slows the run relative to an all-warm machine.
        let no_tier = Experiment::new(Model::Llama3_70b, 128)
            .policy(Policy::dynmg_bma())
            .run();
        assert!(cycle.cycles > no_tier.cycles, "promotions cost cycles");

        // Degenerate tiers are rejected gracefully.
        let err = Experiment::new(Model::Llama3_70b, 128)
            .kv(KvSpec::lru(0))
            .try_run()
            .unwrap_err();
        assert!(matches!(err, ExperimentError::InvalidKv(_)));
    }

    #[test]
    fn zero_cycle_speedup_is_an_error() {
        let a = Experiment::new(Model::Llama3_70b, 128).run();
        let mut b = a.clone();
        b.cycles = 0;
        assert!(a.try_speedup_over(&b).is_err());
        assert!(b.try_speedup_over(&a).is_err());
        assert!(a.try_speedup_over(&a).unwrap() == 1.0);
    }
}
