//! # llamcat — Cache Arbitration and Throttling for LLM inference
//!
//! Reference implementation of the LLaMCAT policies (ICPP 2025):
//! optimizing the last-level cache *miss-handling architecture* for the
//! memory-bound LLM decode stage.
//!
//! The paper's contribution is **CAT**, three cooperating mechanisms at
//! the LLC arbiter and the cores:
//!
//! * **Balanced arbitration ("B")** — per-core progress counters; the
//!   arbiter serves the least-served core first
//!   ([`arbiter::BalancedArbiter`]);
//! * **MSHR-aware arbitration ("MA" / "BMA")** — a hit buffer,
//!   `sent_reqs` FIFO and real-time MSHR snapshot let the arbiter
//!   prioritize speculated cache hits and MSHR hits, keeping the miss
//!   pipeline from stalling ([`arbiter::MshrAwareArbiter`]);
//! * **Two-level dynamic multi-gear throttling ("dynmg")** — a global
//!   gear (driven by the cache-stall proportion `t_cs`) selects *how
//!   many* of the fastest cores to throttle, while an in-core DYNCTA-like
//!   controller selects *how much*, on a faster timescale
//!   ([`throttle::DynMg`]).
//!
//! The published baselines the paper compares against are implemented
//! alongside: DYNCTA ([`throttle::Dyncta`]), LCS ([`throttle::Lcs`]) and
//! COBRRA ([`arbiter::CobrraArbiter`]).
//!
//! [`experiment`] offers a one-call API from (workload, policy) to a
//! finished cycle-level simulation — the workload side is the open
//! [`Workload`](llamcat_trace::workloads::Workload) trait with the
//! paper's two Llama3 shapes as presets; [`spec`] makes policies
//! serializable data with a stable-name registry; [`area`] reproduces
//! the Section 6.1 hardware-cost evaluation analytically.
//!
//! ## Quick start
//!
//! ```
//! use llamcat::experiment::{Experiment, Model, Policy};
//!
//! let unopt = Experiment::new(Model::Llama3_70b, 256).run();
//! let ours = Experiment::new(Model::Llama3_70b, 256)
//!     .policy(Policy::dynmg_bma())
//!     .run();
//! assert!(unopt.completed && ours.completed);
//! println!("speedup: {:.2}x", ours.speedup_over(&unopt));
//! ```

pub mod arbiter;
pub mod area;
pub mod experiment;
pub mod spec;
pub mod throttle;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::arbiter::{
        BalancedArbiter, CobrraArbiter, HitBuffer, MshrAwareArbiter, MshrAwareConfig,
        PrefixAwareArbiter, SentReqs, TieBreak,
    };
    pub use crate::area::{arbiter_area, hit_buffer_area, AreaConstants, AreaReport};
    pub use crate::experiment::{
        geomean, ArbPolicy, Experiment, ExperimentError, Layout, Model, Policy, RunReport,
        ThrottlePolicy,
    };
    pub use crate::spec::{ArbSpec, KvSpec, PolicySpec, ThrottleSpec};
    pub use crate::throttle::{Contention, DynMg, DynMgConfig, Dyncta, DynctaConfig, Lcs};
}
