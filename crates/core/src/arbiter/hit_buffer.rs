//! The hit buffer: a FIFO of recently observed cache-hit line addresses
//! (Section 4.3.1, the red `hit buffer (FIFO)` of Fig 4).
//!
//! The arbiter cannot afford a real tag lookup per queued request, so it
//! *speculates*: an address that hit recently (or was just filled) is
//! likely to hit again. Mispredictions are harmless — the real lookup
//! still decides — they only cost arbitration quality.
//!
//! `contains` runs once per queued candidate per arbitration pass, which
//! made the naive 48-entry linear scan one of the hottest leaves of the
//! whole simulator. The FIFO is therefore shadowed by an occurrence-count
//! index (non-adjacent duplicates are legal, so a plain set is not
//! enough), keeping lookups O(1) while the observable FIFO semantics —
//! insertion order, eviction order, adjacent-duplicate coalescing — stay
//! exactly as before.

use std::collections::VecDeque;

use llamcat_sim::hash::AddrHashMap;
use llamcat_sim::types::Addr;

/// Bounded FIFO of line addresses used for cache-hit speculation.
#[derive(Debug, Clone)]
pub struct HitBuffer {
    entries: VecDeque<Addr>,
    /// Occurrences of each address currently in `entries` (duplicates
    /// arise when an address re-recorded after intervening traffic is
    /// still resident). Pre-reserved to `capacity`: no steady-state
    /// allocation (`tests/alloc_regression.rs` gates the hot path).
    index: AddrHashMap<Addr, u32>,
    capacity: usize,
}

impl HitBuffer {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        let mut index = AddrHashMap::default();
        index.reserve(capacity);
        HitBuffer {
            entries: VecDeque::with_capacity(capacity),
            index,
            capacity,
        }
    }

    /// Records a (predicted-to-repeat) hit address; evicts the oldest
    /// entry when full. Duplicate of the newest entry is skipped to
    /// preserve capacity under bursty repeats.
    pub fn record(&mut self, line_addr: Addr) {
        if self.entries.back() == Some(&line_addr) {
            return;
        }
        if self.entries.len() == self.capacity {
            let old = self.entries.pop_front().expect("capacity > 0");
            match self.index.get_mut(&old) {
                Some(n) if *n > 1 => *n -= 1,
                _ => {
                    self.index.remove(&old);
                }
            }
        }
        self.entries.push_back(line_addr);
        *self.index.entry(line_addr).or_insert(0) += 1;
    }

    /// Speculative lookup.
    pub fn contains(&self, line_addr: Addr) -> bool {
        self.index.contains_key(&line_addr)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_finds() {
        let mut h = HitBuffer::new(4);
        h.record(0x40);
        h.record(0x80);
        assert!(h.contains(0x40));
        assert!(h.contains(0x80));
        assert!(!h.contains(0xc0));
    }

    #[test]
    fn fifo_eviction() {
        let mut h = HitBuffer::new(2);
        h.record(1);
        h.record(2);
        h.record(3);
        assert!(!h.contains(1), "oldest evicted");
        assert!(h.contains(2));
        assert!(h.contains(3));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn consecutive_duplicates_coalesce() {
        let mut h = HitBuffer::new(2);
        h.record(7);
        h.record(7);
        h.record(7);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut h = HitBuffer::new(2);
        h.record(1);
        h.clear();
        assert!(h.is_empty());
        assert!(!h.contains(1));
    }

    #[test]
    fn non_adjacent_duplicate_survives_single_eviction() {
        // [7, 8, 7] at capacity 3: evicting the front 7 must not make
        // the resident back 7 invisible to `contains`.
        let mut h = HitBuffer::new(3);
        h.record(7);
        h.record(8);
        h.record(7);
        assert_eq!(h.len(), 3);
        h.record(9); // evicts the front 7
        assert!(h.contains(7), "second occurrence still resident");
        assert!(h.contains(8));
        assert!(h.contains(9));
        h.record(10); // evicts 8
        h.record(11); // evicts the second 7
        assert!(!h.contains(7), "both occurrences gone");
    }
}
