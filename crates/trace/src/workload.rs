//! LLM decode workloads: the Logit operator (Q·Kᵀ) under GQA.
//!
//! Section 6.2.2 of the paper: "we test our design against the Logit
//! operator (QKᵀ). Computation of this operator is executed across
//! multiple head groups (H), head group sizes (G), sequence lengths (L),
//! and dimensions per head (D). The operator sizes are set according to
//! Llama3 70b (H=8, G=8, D=128) and Llama3 405b (H=8, G=16, D=128)."
//!
//! During decode there is a single query token: for each KV head `h` and
//! each query head `g` within its group, the operator computes
//! `score[h][g][l] = Σ_d q[h][g][d] · k[h][l][d]` — a GEMV whose memory
//! traffic is dominated by streaming the K cache. The G query heads of a
//! group all read the *same* K\[h\], which is the temporal locality that
//! MSHR merging captures.

use serde::{Deserialize, Serialize};

use llamcat_sim::types::Addr;

/// Element width of KV-cache tensors (fp16 / bf16).
pub const ELEM_BYTES: u64 = 2;

/// Base virtual addresses of the operator's tensors. Generously spaced
/// so tensors never overlap for any realistic shape.
pub const Q_BASE: Addr = 0x1000_0000;
pub const K_BASE: Addr = 0x1_0000_0000;
pub const SCORE_BASE: Addr = 0x8_0000_0000;

/// The decode-stage Logit operator `Q · Kᵀ` with GQA dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogitOp {
    /// Number of KV head groups (H).
    pub heads: usize,
    /// Query heads per KV head (G).
    pub group_size: usize,
    /// Sequence length — number of cached KV tokens (L).
    pub seq_len: usize,
    /// Dimension per head (D).
    pub head_dim: usize,
}

impl LogitOp {
    /// Llama3 70b decode shape: H=8, G=8, D=128.
    pub fn llama3_70b(seq_len: usize) -> Self {
        LogitOp {
            heads: 8,
            group_size: 8,
            seq_len,
            head_dim: 128,
        }
    }

    /// Llama3 405b decode shape: H=8, G=16, D=128.
    pub fn llama3_405b(seq_len: usize) -> Self {
        LogitOp {
            heads: 8,
            group_size: 16,
            seq_len,
            head_dim: 128,
        }
    }

    /// Bytes of one K row (one token's key vector for one head).
    pub fn k_row_bytes(&self) -> u64 {
        self.head_dim as u64 * ELEM_BYTES
    }

    /// Total K-cache footprint for this operator.
    pub fn k_bytes(&self) -> u64 {
        self.heads as u64 * self.seq_len as u64 * self.k_row_bytes()
    }

    /// Total Q footprint (one token: H×G query rows).
    pub fn q_bytes(&self) -> u64 {
        (self.heads * self.group_size) as u64 * self.head_dim as u64 * ELEM_BYTES
    }

    /// Total attention-score output footprint.
    pub fn score_bytes(&self) -> u64 {
        (self.heads * self.group_size * self.seq_len) as u64 * ELEM_BYTES
    }

    /// Ideal (perfect-reuse) DRAM read traffic: each K row fetched once.
    pub fn min_read_bytes(&self) -> u64 {
        self.k_bytes() + self.q_bytes()
    }

    /// Worst-case (zero-reuse) read traffic: K streamed once per query
    /// head in the group.
    pub fn max_read_bytes(&self) -> u64 {
        self.k_bytes() * self.group_size as u64 + self.q_bytes()
    }

    /// Address of element `d` of `K[h][l]` (row-major `[h][l][d]`).
    pub fn k_addr(&self, h: usize, l: usize, d: usize) -> Addr {
        debug_assert!(h < self.heads && l < self.seq_len && d < self.head_dim);
        K_BASE + (((h * self.seq_len + l) * self.head_dim + d) as u64) * ELEM_BYTES
    }

    /// Address of element `d` of `Q[h][g]` (row-major `[h][g][d]`).
    pub fn q_addr(&self, h: usize, g: usize, d: usize) -> Addr {
        debug_assert!(h < self.heads && g < self.group_size && d < self.head_dim);
        Q_BASE + (((h * self.group_size + g) * self.head_dim + d) as u64) * ELEM_BYTES
    }

    /// Address of `score[h][g][l]` (row-major `[h][g][l]`).
    pub fn score_addr(&self, h: usize, g: usize, l: usize) -> Addr {
        debug_assert!(h < self.heads && g < self.group_size && l < self.seq_len);
        SCORE_BASE + (((h * self.group_size + g) * self.seq_len + l) as u64) * ELEM_BYTES
    }

    /// Validates the shape (power-of-two friendly dims, positive sizes).
    pub fn validate(&self) -> Result<(), String> {
        if self.heads == 0 || self.group_size == 0 || self.seq_len == 0 || self.head_dim == 0 {
            return Err("all dimensions must be positive".into());
        }
        if !(self.head_dim * ELEM_BYTES as usize).is_multiple_of(64) {
            return Err("K rows must be a whole number of cache lines".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama3_70b_shape() {
        let op = LogitOp::llama3_70b(8192);
        assert_eq!(op.heads, 8);
        assert_eq!(op.group_size, 8);
        assert_eq!(op.head_dim, 128);
        // K: 8 heads * 8192 tokens * 256 B = 16 MB.
        assert_eq!(op.k_bytes(), 16 * 1024 * 1024);
        assert_eq!(op.k_row_bytes(), 256);
        op.validate().unwrap();
    }

    #[test]
    fn llama3_405b_doubles_group() {
        let op = LogitOp::llama3_405b(4096);
        assert_eq!(op.group_size, 16);
        assert_eq!(op.q_bytes(), 8 * 16 * 128 * 2);
    }

    #[test]
    fn traffic_bounds() {
        let op = LogitOp::llama3_70b(4096);
        assert!(op.min_read_bytes() < op.max_read_bytes());
        assert_eq!(
            op.max_read_bytes() - op.q_bytes(),
            (op.min_read_bytes() - op.q_bytes()) * 8
        );
    }

    #[test]
    fn addresses_are_disjoint_across_tensors() {
        let op = LogitOp::llama3_405b(32 * 1024);
        let q_end = op.q_addr(7, 15, 127) + ELEM_BYTES;
        let k_end = op.k_addr(7, op.seq_len - 1, 127) + ELEM_BYTES;
        let s_end = op.score_addr(7, 15, op.seq_len - 1) + ELEM_BYTES;
        assert!(q_end <= K_BASE);
        assert!(k_end <= SCORE_BASE);
        assert!(s_end > SCORE_BASE);
    }

    #[test]
    fn k_rows_are_contiguous() {
        let op = LogitOp::llama3_70b(1024);
        assert_eq!(op.k_addr(0, 0, 127) + 2, op.k_addr(0, 1, 0));
        assert_eq!(op.k_addr(0, 1023, 127) + 2, op.k_addr(1, 0, 0));
    }

    #[test]
    fn validation_rejects_ragged_rows() {
        let mut op = LogitOp::llama3_70b(128);
        op.head_dim = 100; // 200 B rows: not line-aligned
        assert!(op.validate().is_err());
        op.head_dim = 0;
        assert!(op.validate().is_err());
    }
}
