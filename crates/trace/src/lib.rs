//! # llamcat-trace — analytical front-end of the LLaMCAT hybrid framework
//!
//! This crate is the Timeloop-class half of the paper's hybrid simulation
//! flow (Fig 6): *operator → dataflow mapping → memory trace*. It knows
//! nothing about cycles; it produces the per-core thread-block traces
//! that `llamcat-sim` executes.
//!
//! * [`workload`] — the decode-stage Logit operator (Q·Kᵀ) with GQA
//!   shapes (Llama3 70b / 405b presets) and tensor address maps;
//! * [`workloads`] — the open [`Workload`](workloads::Workload) trait
//!   (iteration space + block builder ⇒ program), impls for Logit,
//!   attention-output A·V and chunked-prefill, and the serde
//!   [`WorkloadSpec`](workloads::WorkloadSpec) campaign currency;
//! * [`mapping`] — loop-nest mapping IR with the paper's legality
//!   constraints (Section 6.2.2);
//! * [`mapper`] — a constrained search ranking legal mappings by
//!   estimated K reuse distance (hand-written mappings also accepted);
//! * [`tracegen`] — walks a mapping into an executable
//!   [`Program`](llamcat_sim::prog::Program);
//! * [`mix`] — multi-tenant serving mixes: N co-scheduled requests
//!   (mixed prefill/decode, staggered arrivals) composed into one
//!   request-tagged program via core partitioning or interleaving,
//!   plus the open-system serve-set composer;
//! * [`arrivals`] — deterministic seeded arrival processes (fixed /
//!   Poisson / bursty / trace replay) for open-system serving;
//! * [`format`](mod@format) — JSON and compact binary trace persistence.
//!
//! ## Example
//!
//! ```
//! use llamcat_trace::prelude::*;
//!
//! let op = LogitOp::llama3_70b(1024);
//! let cand = best_mapping(&op, &MapperConstraints::default()).unwrap();
//! let (program, meta) = generate(&op, &cand.mapping, &TraceGenConfig::default());
//! assert_eq!(meta.num_blocks, program.num_blocks());
//! // Every query head streams its group's K once:
//! assert!(meta.total_load_bytes >= op.k_bytes() * op.group_size as u64);
//! ```

pub mod arrivals;
pub mod format;
pub mod mapper;
pub mod mapping;
pub mod mix;
pub mod tracegen;
pub mod workload;
pub mod workloads;

/// Convenient re-exports.
pub mod prelude {
    pub use crate::arrivals::ArrivalSpec;
    pub use crate::format::TraceFile;
    pub use crate::mapper::{best_mapping, enumerate, Candidate, MapperConstraints};
    pub use crate::mapping::{logit_mapping, Dim, Layout, Level, Loop, LoopKind, Mapping, TbOrder};
    pub use crate::mix::{
        generate_serve_set, MixAssignment, MixMeta, MixedRequest, WorkloadMix, REQUEST_VA_STRIDE,
    };
    pub use crate::tracegen::{
        generate, generate_default, generate_with, TraceGenConfig, TraceMeta,
    };
    pub use crate::workload::{LogitOp, ELEM_BYTES, K_BASE, Q_BASE, SCORE_BASE};
    pub use crate::workloads::{
        AttnOutputWorkload, LogitWorkload, PrefillLogitWorkload, Workload, WorkloadSpec, OUT_BASE,
        V_BASE,
    };
}
