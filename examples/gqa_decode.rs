//! GQA decode scenario: how the policies behave as the decoded context
//! grows — the situation the paper's introduction motivates (long-context
//! decoding is KV-cache-bandwidth bound).
//!
//! Runs the fused [`GqaDecodeWorkload`] (K and V streamed in one pass,
//! FlashDecoding-style — scores never touch memory), sweeping sequence
//! length for both model shapes and printing speedups of the
//! throttling+arbitration ladder over the unoptimized machine.
//!
//! ```text
//! cargo run --release --example gqa_decode [max_seq_k]
//! ```

use std::sync::Arc;

use llamcat::experiment::{geomean, Experiment, Model, Policy};
use llamcat_trace::workloads::GqaDecodeWorkload;

fn main() {
    let max_k: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let seqs: Vec<usize> = [1, 2, 4, 8, 16]
        .iter()
        .filter(|&&k| k <= max_k)
        .map(|&k| k * 1024)
        .collect();
    let policies = [Policy::dynmg(), Policy::dynmg_bma()];

    for model in [Model::Llama3_70b, Model::Llama3_405b] {
        let label = match model {
            Model::Llama3_70b => "llama3 70b (H=8, G=8)",
            Model::Llama3_405b => "llama3 405b (H=8, G=16)",
        };
        println!("\n=== {label} ===");
        print!("{:<14}", "policy");
        for s in &seqs {
            print!("{:>9}", format!("{}K", s / 1024));
        }
        println!("{:>10}", "geomean");
        let decode = |s: usize| Arc::new(GqaDecodeWorkload::new(model.op(s)));
        let base: Vec<_> = seqs
            .iter()
            .map(|&s| Experiment::with_workload(decode(s)).run())
            .collect();
        for p in policies {
            let mut speedups = Vec::new();
            print!("{:<14}", p.label());
            for (i, &s) in seqs.iter().enumerate() {
                let r = Experiment::with_workload(decode(s)).policy(p).run();
                let sp = r.speedup_over(&base[i]);
                speedups.push(sp);
                print!("{sp:>8.3}x");
            }
            println!("{:>9.3}x", geomean(&speedups));
        }
    }
    println!("\n(decode is KV-cache bound: speedups grow with context length\n as the working set outgrows the LLC, per the paper's Fig 7/9)");
}
