//! Cache-capacity scenario (a runnable slice of Fig 9): how sensitive
//! each policy is to L2 size under a long context — expressed as one
//! declarative [`Campaign`] over the L2 axis.
//!
//! ```text
//! cargo run --release --example cache_sweep [seq_len] [70b|405b]
//! ```

use llamcat::experiment::Model;
use llamcat::spec::PolicySpec;
use llamcat_bench::Campaign;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seq_len: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8192);
    let model = match args.get(2).map(|s| s.as_str()) {
        Some("405b") => Model::Llama3_405b,
        _ => Model::Llama3_70b,
    };
    let sizes = [8u64, 16, 32, 64];

    let report = Campaign::new("cache-sweep")
        .workload(model.spec())
        .seq_lens([seq_len])
        .l2_sizes_mb(sizes)
        .policies([
            PolicySpec::unoptimized(),
            PolicySpec::dyncta(),
            PolicySpec::dynmg(),
            PolicySpec::dynmg_bma(),
        ])
        .run()
        .expect("cache sweep campaign");

    println!("L2 capacity sweep, {:?} @ seq {}\n", model, seq_len);
    print!("{:<16}", "policy");
    for mb in sizes {
        print!("{:>10}", format!("{mb}MB"));
    }
    println!();
    // Normalize everything against unoptimized at the largest cache: the
    // "how much cache does this policy need" view.
    let ref_cycles = report
        .policy_records(0)
        .last()
        .expect("largest-cache record")
        .report
        .cycles;
    for (p, policy) in report.campaign.policies.iter().enumerate() {
        print!("{:<16}", policy.label());
        for rec in report.policy_records(p) {
            print!("{:>9.3}x", ref_cycles as f64 / rec.report.cycles as f64);
        }
        println!();
    }
    println!(
        "\n(values are speedups vs unoptimized @ {}MB; a flat row means the\n policy is insensitive to cache size — the paper's claim for dynmg+BMA)",
        sizes.last().expect("non-empty")
    );
}
