//! Full-system wiring and the main simulation loop.
//!
//! Tick order within one core cycle is fixed (and documented) so that
//! runs are bit-reproducible:
//!
//! 1. deliver due interconnect requests to slices;
//! 2. tick every LLC slice, then flush its outbound responses, DRAM
//!    reads and write-backs;
//! 3. advance the DRAM clock domain (fractional ratio: 1.96 GHz core vs
//!    1.6 GHz DDR5-3200 command clock) and deliver fills to slices;
//! 4. deliver due responses to cores and tick every core, flushing its
//!    new requests into the interconnect;
//! 5. run the throttle controller and apply its `max_tb` decisions.

use crate::arb::{RequestArbiter, ThrottleController, ThrottleInputs};
use crate::config::SystemConfig;
use crate::core_model::VectorCore;
use crate::dram::{DramSystem, MappingScheme};
use crate::llc::LlcSlice;
use crate::noc::Noc;
use crate::prog::Program;
use crate::sched::TbScheduler;
use crate::stats::SimStats;
use crate::types::{line_index, Addr, Cycle, MemReq, MemResp, SliceId};

/// Outcome of [`System::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// All thread blocks completed and the machine drained.
    Completed,
    /// The cycle budget was exhausted first.
    CycleLimit,
}

/// The simulated machine.
pub struct System {
    cfg: SystemConfig,
    program: Program,
    cores: Vec<VectorCore>,
    slices: Vec<LlcSlice>,
    noc: Noc,
    dram: DramSystem,
    sched: TbScheduler,
    throttle: Box<dyn ThrottleController>,
    cycle: Cycle,
    /// Picosecond accumulators for the clock-domain crossing.
    core_time_ps: u64,
    dram_time_ps: u64,
    core_period_ps: u64,
    dram_period_ps: u64,
    max_tb: Vec<usize>,
    progress_scratch: Vec<u64>,
    c_mem_scratch: Vec<u64>,
    c_idle_scratch: Vec<u64>,
    tbs_done_scratch: Vec<u64>,
    active_tbs_scratch: Vec<usize>,
    req_scratch: Vec<MemReq>,
    resp_scratch: Vec<MemResp>,
    fill_scratch: Vec<crate::dram::ReadReturn>,
}

impl System {
    /// Builds a system running `program` with the given policies.
    ///
    /// `make_arbiter` is invoked once per slice so each slice owns an
    /// independent arbiter instance.
    pub fn new(
        cfg: SystemConfig,
        program: Program,
        make_arbiter: &dyn Fn(SliceId) -> Box<dyn RequestArbiter>,
        mut throttle: Box<dyn ThrottleController>,
    ) -> Self {
        cfg.validate().expect("invalid system configuration");
        let cores = (0..cfg.num_cores)
            .map(|i| VectorCore::new(i, cfg.core, cfg.l1))
            .collect::<Vec<_>>();
        let mut slices = (0..cfg.l2.num_slices)
            .map(|i| LlcSlice::new(i, cfg.l2, cfg.num_cores, make_arbiter(i)))
            .collect::<Vec<_>>();
        for s in &mut slices {
            s.start_operator();
        }
        throttle.reset(cfg.num_cores);
        let sched = TbScheduler::new(&program, cfg.num_cores, cfg.core.num_inst_windows);
        let noc = Noc::new(cfg.noc, cfg.num_cores, cfg.l2.num_slices);
        let dram = DramSystem::new(cfg.dram, MappingScheme::RoBaRaCoCh);
        let n = cfg.num_cores;
        System {
            core_period_ps: cfg.core_period_ps(),
            dram_period_ps: cfg.dram.timing.tck_ps,
            cfg,
            program,
            cores,
            slices,
            noc,
            dram,
            sched,
            throttle,
            cycle: 0,
            core_time_ps: 0,
            dram_time_ps: 0,
            max_tb: vec![cfg.core.num_inst_windows; n],
            progress_scratch: vec![0; n],
            c_mem_scratch: vec![0; n],
            c_idle_scratch: vec![0; n],
            tbs_done_scratch: vec![0; n],
            active_tbs_scratch: vec![0; n],
            req_scratch: Vec::with_capacity(64),
            resp_scratch: Vec::with_capacity(64),
            fill_scratch: Vec::with_capacity(64),
        }
    }

    /// Slice that owns `line_addr` (slices interleave on low line bits,
    /// i.e. the LLC is sliced across the cache-set dimension).
    #[inline]
    pub fn slice_of(&self, line_addr: Addr) -> SliceId {
        (line_index(line_addr) % self.cfg.l2.num_slices as u64) as usize
    }

    /// Runs until completion or `max_cycles`, returning statistics.
    pub fn run(&mut self, max_cycles: Cycle) -> (SimStats, RunOutcome) {
        let mut outcome = RunOutcome::CycleLimit;
        while self.cycle < max_cycles {
            self.tick();
            if self.is_done() {
                outcome = RunOutcome::Completed;
                break;
            }
        }
        (self.collect_stats(), outcome)
    }

    /// Single-cycle step (public for fine-grained tests).
    pub fn tick(&mut self) {
        let now = self.cycle;

        // 1. Interconnect -> slice request queues.
        for s in 0..self.slices.len() {
            self.req_scratch.clear();
            self.noc.drain_reqs(s, now, &mut self.req_scratch);
            for req in self.req_scratch.drain(..) {
                self.slices[s].deliver(req);
            }
        }

        // 2. Slices.
        for s in 0..self.slices.len() {
            self.slices[s].tick(now);
            // Outbound responses into the NoC.
            while let Some(o) = self.slices[s].outbound.pop_front() {
                self.noc.send_resp(s, o.resp, o.at.max(now));
            }
            // DRAM dispatch with channel backpressure.
            while let Some(&line) = self.slices[s].dram_reads.front() {
                if self.dram.enqueue_read(line, s) {
                    self.slices[s].dram_reads.pop_front();
                } else {
                    break;
                }
            }
            while let Some(&line) = self.slices[s].dram_writes.front() {
                if self.dram.enqueue_write(line) {
                    self.slices[s].dram_writes.pop_front();
                } else {
                    break;
                }
            }
        }

        // 3. DRAM clock domain.
        self.core_time_ps += self.core_period_ps;
        while self.dram_time_ps + self.dram_period_ps <= self.core_time_ps {
            self.dram_time_ps += self.dram_period_ps;
            self.fill_scratch.clear();
            self.fill_scratch.extend_from_slice(self.dram.tick());
            for f in &self.fill_scratch {
                self.slices[f.slice].deliver_fill(f.line_addr);
            }
        }

        // 4. Cores.
        for c in 0..self.cores.len() {
            self.resp_scratch.clear();
            self.noc.drain_resps(c, now, &mut self.resp_scratch);
            for resp in self.resp_scratch.drain(..) {
                self.cores[c].on_resp(resp, now);
            }
            self.cores[c].tick(now, &self.program, &mut self.sched);
            while let Some(req) = self.cores[c].outbound.pop_front() {
                let slice = self.slice_of(req.line_addr);
                self.noc.send_req(slice, req, now);
            }
        }

        // 5. Throttling.
        self.run_throttle(now);

        self.cycle += 1;
    }

    fn run_throttle(&mut self, now: Cycle) {
        for p in self.progress_scratch.iter_mut() {
            *p = 0;
        }
        for s in &self.slices {
            for (c, v) in s.served().iter().enumerate() {
                self.progress_scratch[c] += v;
            }
        }
        let mut llc_stalls = 0;
        for s in &self.slices {
            llc_stalls += s.stats.stall_cycles;
        }
        for (c, core) in self.cores.iter().enumerate() {
            self.c_mem_scratch[c] = core.stats.mem_stall_cycles;
            self.c_idle_scratch[c] = core.stats.idle_cycles;
            self.tbs_done_scratch[c] = core.stats.tbs_completed;
            self.active_tbs_scratch[c] = core.resident_tbs();
        }
        let inputs = ThrottleInputs {
            cycle: now,
            num_windows: self.cfg.core.num_inst_windows,
            num_slices: self.cfg.l2.num_slices,
            progress: &self.progress_scratch,
            c_mem: &self.c_mem_scratch,
            c_idle: &self.c_idle_scratch,
            llc_stall_cycles: llc_stalls,
            active_tbs: &self.active_tbs_scratch,
            tbs_completed: &self.tbs_done_scratch,
        };
        self.throttle.tick(&inputs, &mut self.max_tb);
        for (core, &m) in self.cores.iter_mut().zip(self.max_tb.iter()) {
            debug_assert!(
                (1..=self.cfg.core.num_inst_windows).contains(&m),
                "throttle produced max_tb {m} outside 1..={}",
                self.cfg.core.num_inst_windows
            );
            core.max_tb = m.clamp(1, self.cfg.core.num_inst_windows);
        }
    }

    /// True when every component has drained.
    pub fn is_done(&self) -> bool {
        self.sched.is_empty()
            && self.cores.iter().all(|c| c.is_idle())
            && self.noc.is_idle()
            && self.slices.iter().all(|s| s.is_idle())
            && self.dram.is_idle()
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Assembles statistics from all components.
    pub fn collect_stats(&self) -> SimStats {
        let mut st = SimStats::new(
            self.slices.len(),
            self.cores.len(),
            self.dram.num_channels(),
        );
        st.cycles = self.cycle;
        st.freq_ghz = self.cfg.freq_ghz;
        for (i, s) in self.slices.iter().enumerate() {
            st.slices[i] = s.stats.clone();
        }
        for (i, c) in self.cores.iter().enumerate() {
            st.cores[i] = c.stats.clone();
        }
        st.channels = self.dram.stats();
        for p in st.progress.iter_mut() {
            *p = 0;
        }
        for s in &self.slices {
            for (c, v) in s.served().iter().enumerate() {
                st.progress[c] += v;
            }
        }
        st.tb_migrations = self.sched.migrations();
        st
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arb::{FifoArbiter, NoThrottle};
    use crate::prog::{Instr, ThreadBlock};

    fn small_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::table5();
        cfg.num_cores = 4;
        cfg.dram.refresh = false;
        cfg
    }

    fn build(cfg: SystemConfig, program: Program) -> System {
        System::new(
            cfg,
            program,
            &|_| Box::new(FifoArbiter),
            Box::new(NoThrottle),
        )
    }

    fn streaming_program(num_blocks: usize, loads_per_block: usize, cores: usize) -> Program {
        let mut blocks = Vec::new();
        for b in 0..num_blocks {
            let mut instrs = Vec::new();
            for l in 0..loads_per_block {
                let addr = ((b * loads_per_block + l) as u64) * 128;
                instrs.push(Instr::Load { addr, bytes: 128 });
            }
            instrs.push(Instr::Barrier);
            blocks.push(ThreadBlock { instrs });
        }
        Program::round_robin(blocks, cores)
    }

    #[test]
    fn completes_and_is_deterministic() {
        let p = streaming_program(8, 8, 4);
        let (s1, o1) = build(small_cfg(), p.clone()).run(1_000_000);
        let (s2, o2) = build(small_cfg(), p).run(1_000_000);
        assert_eq!(o1, RunOutcome::Completed);
        assert_eq!(o2, RunOutcome::Completed);
        assert_eq!(s1.cycles, s2.cycles, "simulation must be deterministic");
        assert_eq!(s1.dram_accesses(), s2.dram_accesses());
        s1.check_consistency().unwrap();
    }

    #[test]
    fn all_blocks_complete() {
        let p = streaming_program(12, 4, 4);
        let (stats, outcome) = build(small_cfg(), p).run(1_000_000);
        assert_eq!(outcome, RunOutcome::Completed);
        let tbs: u64 = stats.cores.iter().map(|c| c.tbs_completed).sum();
        assert_eq!(tbs, 12);
    }

    #[test]
    fn distinct_lines_reach_dram_once() {
        // 4 blocks x 4 disjoint 128B loads = 32 distinct lines.
        let p = streaming_program(4, 4, 4);
        let (stats, _) = build(small_cfg(), p).run(1_000_000);
        let reads: u64 = stats.channels.iter().map(|c| c.reads).sum();
        assert_eq!(reads, 32, "no reuse => one DRAM read per line");
        assert_eq!(stats.l2_hit_rate(), 0.0);
    }

    #[test]
    fn shared_lines_merge_or_hit() {
        // All four cores read the same 2 lines.
        let mk = || ThreadBlock {
            instrs: vec![
                Instr::Load {
                    addr: 0,
                    bytes: 128,
                },
                Instr::Barrier,
            ],
        };
        let p = Program::round_robin((0..4).map(|_| mk()).collect(), 4);
        let (stats, _) = build(small_cfg(), p).run(1_000_000);
        let reads: u64 = stats.channels.iter().map(|c| c.reads).sum();
        assert_eq!(reads, 2, "sharing collapses into one fetch per line");
        let merges: u64 = stats.slices.iter().map(|s| s.mshr_merges).sum();
        let hits: u64 = stats.slices.iter().map(|s| s.hits).sum();
        assert_eq!(merges + hits, 6, "3 extra requesters per line");
    }

    #[test]
    fn cycle_limit_reported() {
        let p = streaming_program(64, 32, 4);
        let (_, outcome) = build(small_cfg(), p).run(10);
        assert_eq!(outcome, RunOutcome::CycleLimit);
    }

    #[test]
    fn stores_write_back_eventually() {
        // Write one line; it allocates in L2 (write-allocate) dirty, and
        // with an empty rest-of-run it stays resident: writebacks may be
        // zero. Force eviction via many conflicting fills is heavyweight;
        // here we just check the store flowed to DRAM as a fill read.
        let tb = ThreadBlock {
            instrs: vec![Instr::Store { addr: 0, bytes: 64 }],
        };
        let p = Program::round_robin(vec![tb], 4);
        let (stats, outcome) = build(small_cfg(), p).run(1_000_000);
        assert_eq!(outcome, RunOutcome::Completed);
        let reads: u64 = stats.channels.iter().map(|c| c.reads).sum();
        assert_eq!(reads, 1, "write-allocate fetches the line");
        stats.check_consistency().unwrap();
    }

    #[test]
    fn progress_counters_cover_all_requests() {
        let p = streaming_program(8, 8, 4);
        let (stats, _) = build(small_cfg(), p).run(1_000_000);
        let served: u64 = stats.progress.iter().sum();
        let lookups: u64 = stats.slices.iter().map(|s| s.lookups).sum();
        assert_eq!(served, lookups);
    }
}
