//! Quickstart: simulate the Llama3 70b Logit operator under the
//! unoptimized machine and under LLaMCAT's final policy (dynmg+BMA),
//! then print the speedup and the mechanism metrics.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use llamcat::experiment::{Experiment, Model, Policy};

fn main() {
    let seq_len = 2048;
    println!("Simulating Llama3 70b Logit (QK^T), seq_len = {seq_len} ...");

    let unopt = Experiment::new(Model::Llama3_70b, seq_len).run();
    let ours = Experiment::new(Model::Llama3_70b, seq_len)
        .policy(Policy::dynmg_bma())
        .run();

    for r in [&unopt, &ours] {
        println!(
            "\n[{}]\n  cycles            {}\n  L2 hit rate       {:.3}\n  MSHR hit rate     {:.3}\n  MSHR entry util   {:.3}\n  cache stalls t_cs {:.3}\n  DRAM bandwidth    {:.2} GB/s\n  DRAM accesses     {}",
            r.policy_label,
            r.cycles,
            r.l2_hit_rate,
            r.mshr_hit_rate,
            r.mshr_entry_util,
            r.t_cs,
            r.dram_bandwidth_gbs,
            r.dram_accesses,
        );
    }
    println!(
        "\nspeedup (dynmg+BMA over unoptimized): {:.3}x",
        ours.speedup_over(&unopt)
    );
}
