//! Trace container with human-readable (JSON) and compact binary
//! persistence.
//!
//! The hybrid framework writes traces to disk so that trace generation
//! (cheap, analytical) and simulation (expensive, cycle-level) can run
//! as separate pipeline stages — the same decoupling the paper's
//! Timeloop → Ramulator2 flow uses.

use std::io::{self, Read, Write};

use serde::{Deserialize, Serialize};

use llamcat_sim::prog::{Instr, Program, ThreadBlock};

use crate::tracegen::TraceMeta;
use crate::workload::LogitOp;

/// Magic header of the original (solo, untagged) binary trace format.
const MAGIC_V1: &[u8; 8] = b"LLAMCAT1";
/// Magic header of the request-tagged binary trace format: every block
/// record carries its serving-request id and arrival cycle.
const MAGIC_V2: &[u8; 8] = b"LLAMCAT2";

/// A trace plus the metadata needed to interpret or regenerate it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceFile {
    pub op: LogitOp,
    pub meta: TraceMeta,
    pub program: Program,
}

impl TraceFile {
    /// Serializes to pretty JSON (diffable, greppable).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialization cannot fail")
    }

    /// Deserializes from JSON.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// Writes the compact binary encoding: the v1 layout for untagged
    /// solo traces (no per-block overhead), v2 with per-block
    /// (request, arrival) records for tagged mixes.
    pub fn write_binary<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let tagged = !self.program.request_tags.is_empty() || !self.program.arrivals.is_empty();
        w.write_all(if tagged { MAGIC_V2 } else { MAGIC_V1 })?;
        let header = serde_json::to_vec(&(self.op, self.meta)).expect("header serializes");
        write_u64(w, header.len() as u64)?;
        w.write_all(&header)?;
        write_u64(w, self.program.blocks.len() as u64)?;
        for (tb, (block, &core)) in self
            .program
            .blocks
            .iter()
            .zip(&self.program.assignment)
            .enumerate()
        {
            write_u64(w, core as u64)?;
            if tagged {
                write_u64(w, self.program.request_of(tb) as u64)?;
                write_u64(w, self.program.arrival_of(tb))?;
            }
            write_u64(w, block.instrs.len() as u64)?;
            for i in &block.instrs {
                match i {
                    Instr::Compute { cycles } => {
                        w.write_all(&[0])?;
                        write_u64(w, *cycles as u64)?;
                    }
                    Instr::Load { addr, bytes } => {
                        w.write_all(&[1])?;
                        write_u64(w, *addr)?;
                        write_u64(w, *bytes as u64)?;
                    }
                    Instr::Store { addr, bytes } => {
                        w.write_all(&[2])?;
                        write_u64(w, *addr)?;
                        write_u64(w, *bytes as u64)?;
                    }
                    Instr::Barrier => {
                        w.write_all(&[3])?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Reads the compact binary encoding: the current request-tagged v2
    /// layout, or the legacy v1 layout (read back as a solo request-0
    /// trace).
    pub fn read_binary<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        let tagged = match &magic {
            m if m == MAGIC_V2 => true,
            m if m == MAGIC_V1 => false,
            _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic")),
        };
        let header_len = read_u64(r)? as usize;
        let mut header = vec![0u8; header_len];
        r.read_exact(&mut header)?;
        let (op, meta): (LogitOp, TraceMeta) = serde_json::from_slice(&header)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let num_blocks = read_u64(r)? as usize;
        let mut blocks = Vec::with_capacity(num_blocks);
        let mut assignment = Vec::with_capacity(num_blocks);
        let mut request_tags = Vec::new();
        let mut arrivals = Vec::new();
        for _ in 0..num_blocks {
            assignment.push(read_u64(r)? as usize);
            if tagged {
                let tag = read_u64(r)?;
                let tag = u32::try_from(tag).map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "request tag exceeds u32")
                })?;
                request_tags.push(tag);
                arrivals.push(read_u64(r)?);
            }
            let n = read_u64(r)? as usize;
            let mut instrs = Vec::with_capacity(n);
            for _ in 0..n {
                let mut tag = [0u8; 1];
                r.read_exact(&mut tag)?;
                let instr = match tag[0] {
                    0 => Instr::Compute {
                        cycles: read_u64(r)? as u32,
                    },
                    1 => Instr::Load {
                        addr: read_u64(r)?,
                        bytes: read_u64(r)? as u32,
                    },
                    2 => Instr::Store {
                        addr: read_u64(r)?,
                        bytes: read_u64(r)? as u32,
                    },
                    3 => Instr::Barrier,
                    t => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("unknown instruction tag {t}"),
                        ))
                    }
                };
                instrs.push(instr);
            }
            blocks.push(ThreadBlock { instrs });
        }
        Ok(TraceFile {
            op,
            meta,
            program: Program::with_requests(blocks, assignment, request_tags, arrivals),
        })
    }
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracegen::{generate_default, TraceGenConfig};

    fn sample() -> TraceFile {
        let op = LogitOp {
            heads: 2,
            group_size: 2,
            seq_len: 64,
            head_dim: 128,
        };
        let (program, meta) = generate_default(&op, &TraceGenConfig::default());
        TraceFile { op, meta, program }
    }

    #[test]
    fn json_round_trip() {
        let t = sample();
        let s = t.to_json();
        let u = TraceFile::from_json(&s).unwrap();
        assert_eq!(t.program.blocks, u.program.blocks);
        assert_eq!(t.meta, u.meta);
    }

    #[test]
    fn binary_round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_binary(&mut buf).unwrap();
        let u = TraceFile::read_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(t.program.blocks, u.program.blocks);
        assert_eq!(t.program.assignment, u.program.assignment);
        assert_eq!(t.op, u.op);
    }

    #[test]
    fn binary_is_denser_than_json() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_binary(&mut buf).unwrap();
        assert!(buf.len() < t.to_json().len());
    }

    /// A request-tagged mix trace (tags, staggered arrivals) through
    /// the container.
    fn tagged_sample() -> TraceFile {
        use crate::mapping::Layout;
        use crate::mix::{MixAssignment, WorkloadMix};
        use crate::workloads::LogitWorkload;
        use std::sync::Arc;

        let op = LogitOp {
            heads: 2,
            group_size: 2,
            seq_len: 64,
            head_dim: 128,
        };
        let mix = WorkloadMix::new(MixAssignment::Interleaved)
            .request(Arc::new(LogitWorkload::new(op)), 0)
            .request(Arc::new(LogitWorkload::new(op)), 700);
        let cfg = TraceGenConfig::default();
        let (program, mix_meta) = mix.generate(Layout::PairStream, 32, &cfg).unwrap();
        let meta = TraceMeta {
            num_blocks: mix_meta.num_blocks,
            total_load_bytes: mix_meta.total_load_bytes,
            total_store_bytes: mix_meta.total_store_bytes,
            max_block_instrs: mix_meta.max_block_instrs,
        };
        TraceFile { op, meta, program }
    }

    #[test]
    fn tagged_json_round_trip() {
        let t = tagged_sample();
        let u = TraceFile::from_json(&t.to_json()).unwrap();
        assert_eq!(u.program.blocks, t.program.blocks);
        assert_eq!(u.program.request_tags, t.program.request_tags);
        assert_eq!(u.program.arrivals, t.program.arrivals);
        assert_eq!(u.program.num_requests(), 2);
    }

    #[test]
    fn tagged_binary_round_trip() {
        let t = tagged_sample();
        let mut buf = Vec::new();
        t.write_binary(&mut buf).unwrap();
        assert_eq!(&buf[..8], b"LLAMCAT2");
        let u = TraceFile::read_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(u.program.blocks, t.program.blocks);
        assert_eq!(u.program.assignment, t.program.assignment);
        assert_eq!(u.program.request_tags, t.program.request_tags);
        assert_eq!(u.program.arrivals, t.program.arrivals);
        assert_eq!(u.program.request_arrivals(), vec![0, 700]);
    }

    #[test]
    fn untagged_traces_keep_the_compact_v1_layout() {
        // Solo traces write the legacy v1 layout — no per-block
        // (tag, arrival) overhead — and read back as request 0.
        let t = sample();
        let mut v1 = Vec::new();
        t.write_binary(&mut v1).unwrap();
        assert_eq!(&v1[..8], b"LLAMCAT1");
        let u = TraceFile::read_binary(&mut v1.as_slice()).unwrap();
        assert_eq!(u.program.blocks, t.program.blocks);
        assert!(u.program.request_tags.is_empty());
        assert_eq!(u.program.num_requests(), 1, "v1 traces are solo request 0");
        // The tagged encoding pays exactly 16 extra bytes per block.
        let mut tagged = t.clone();
        tagged.program.request_tags = vec![0; tagged.program.blocks.len()];
        tagged.program.arrivals = vec![0; tagged.program.blocks.len()];
        let mut v2 = Vec::new();
        tagged.write_binary(&mut v2).unwrap();
        assert_eq!(&v2[..8], b"LLAMCAT2");
        assert_eq!(v2.len(), v1.len() + 16 * t.program.blocks.len());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = b"NOTATRCE".to_vec();
        buf.extend_from_slice(&[0u8; 64]);
        assert!(TraceFile::read_binary(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let t = sample();
        let mut buf = Vec::new();
        t.write_binary(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(TraceFile::read_binary(&mut buf.as_slice()).is_err());
    }
}
