//! Balanced arbitration — policy "B" (Section 4.1).
//!
//! Default arbiters serve first-come-first-served; a core whose requests
//! happen to arrive early can monopolize the slice's limited MSHR
//! entries and starve its peers. Policy B tracks per-core progress
//! counters (requests served since operator start, the `cnt` registers
//! of Fig 4) and always picks the queued request whose requester has the
//! *smallest* counter value, FIFO among ties.

use llamcat_sim::arb::{ArbiterCtx, RequestArbiter};

/// The policy-B ordering key: least-served core first, FIFO (queue
/// position) among ties. The single source of truth for both the
/// standalone B arbiter and BMA tie-breaking.
#[inline]
fn balanced_key(ctx: &ArbiterCtx<'_>, i: usize) -> (u64, usize) {
    (ctx.served[ctx.req(i).core], i)
}

/// Selects the queue index whose core has minimum served-count among
/// `candidates`. Shared by the standalone B arbiter and by BMA
/// tie-breaking.
pub(crate) fn balanced_pick(ctx: &ArbiterCtx<'_>, candidates: &[usize]) -> Option<usize> {
    candidates
        .iter()
        .copied()
        .min_by_key(|&i| balanced_key(ctx, i))
}

/// Policy B: serve cores on an equivalent basis.
#[derive(Debug, Default, Clone)]
pub struct BalancedArbiter;

impl RequestArbiter for BalancedArbiter {
    fn select(&mut self, ctx: &ArbiterCtx<'_>) -> Option<usize> {
        // Direct min over the queue (allocation-free; candidate lists
        // only exist on the BMA tie-break path).
        (0..ctx.len()).min_by_key(|&i| balanced_key(ctx, i))
    }

    fn wants_mshr_snapshot(&self) -> bool {
        false // progress counters only; never reads ctx.mshr
    }

    fn next_event(&self, _now: u64) -> Option<u64> {
        None // stateless between selections: ticking is a no-op
    }

    fn name(&self) -> &'static str {
        "B"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamcat_sim::mshr::MshrSnapshot;
    use llamcat_sim::pool::{ReqHandle, ReqPool};
    use llamcat_sim::types::MemReq;

    fn pool_with(reqs: &[(usize, u64)]) -> (ReqPool, Vec<ReqHandle>) {
        let mut pool = ReqPool::default();
        let handles = reqs
            .iter()
            .map(|&(core, addr)| {
                pool.alloc(MemReq {
                    id: addr,
                    core,
                    request: 0,
                    line_addr: addr,
                    is_write: false,
                    issued_at: 0,
                })
            })
            .collect();
        (pool, handles)
    }

    fn ctx_with<'a>(
        queue: &'a [ReqHandle],
        pool: &'a ReqPool,
        served: &'a [u64],
        snap: &'a MshrSnapshot,
    ) -> ArbiterCtx<'a> {
        ArbiterCtx {
            queue,
            pool,
            mshr: snap,
            served,
            kv_busy: &[],
            cycle: 0,
        }
    }

    #[test]
    fn picks_least_served_core() {
        let mut b = BalancedArbiter;
        let snap = MshrSnapshot::default();
        let (pool, queue) = pool_with(&[(0, 0x40), (1, 0x80), (2, 0xc0)]);
        let served = vec![10, 2, 5];
        assert_eq!(b.select(&ctx_with(&queue, &pool, &served, &snap)), Some(1));
    }

    #[test]
    fn fifo_among_ties() {
        let mut b = BalancedArbiter;
        let snap = MshrSnapshot::default();
        let (pool, queue) = pool_with(&[(2, 0x40), (1, 0x80), (1, 0xc0)]);
        let served = vec![0, 3, 3];
        // served[2]=3 for entry 0, served[1]=3 for entries 1 and 2.
        // All tie; FIFO wins.
        assert_eq!(b.select(&ctx_with(&queue, &pool, &served, &snap)), Some(0));
    }

    #[test]
    fn empty_queue_yields_none() {
        let mut b = BalancedArbiter;
        let snap = MshrSnapshot::default();
        let pool = ReqPool::default();
        assert_eq!(b.select(&ctx_with(&[], &pool, &[0, 0], &snap)), None);
    }
}
