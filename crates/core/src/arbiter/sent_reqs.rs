//! The `sent_reqs` FIFO (Section 4.3.1, red in Fig 4/Fig 5).
//!
//! A request chosen by the arbiter appears in the MSHR snapshot only
//! after the tag pipeline (hit-latency) and the MSHR lookup
//! (mshr-latency) complete. During that window the snapshot is stale:
//! without compensation the arbiter would double-allocate entries or
//! miss merge opportunities. `sent_reqs` tracks the in-flight chosen
//! requests for exactly `hit_latency + mshr_latency` cycles, each tagged
//! with its `spec_hit_result` bit — speculated cache hits are masked out
//! when estimating MSHR pressure, since hits never touch the MSHR.

use std::collections::VecDeque;

use llamcat_sim::types::Addr;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SentEntry {
    line_addr: Addr,
    /// The spec_hit_result bit assigned at selection time.
    spec_hit: bool,
    /// Cycles remaining before the request is visible in the MSHR
    /// snapshot (then it retires from this FIFO).
    remaining: u64,
}

/// FIFO of recently chosen requests still invisible to the MSHR snapshot.
#[derive(Debug, Clone)]
pub struct SentReqs {
    entries: VecDeque<SentEntry>,
    /// Residency: hit-latency + mshr-latency.
    latency: u64,
}

impl SentReqs {
    pub fn new(hit_latency: u64, mshr_latency: u64) -> Self {
        SentReqs {
            entries: VecDeque::new(),
            latency: hit_latency + mshr_latency,
        }
    }

    /// Registers a chosen request with its speculated-hit bit.
    pub fn push(&mut self, line_addr: Addr, spec_hit: bool) {
        self.entries.push_back(SentEntry {
            line_addr,
            spec_hit,
            remaining: self.latency,
        });
    }

    /// Ages all entries by one cycle, retiring those whose MSHR state is
    /// now architecturally visible.
    pub fn tick(&mut self) {
        for e in self.entries.iter_mut() {
            e.remaining -= 1;
        }
        while self.entries.front().is_some_and(|e| e.remaining == 0) {
            self.entries.pop_front();
        }
    }

    /// Fast-forwards `cycles` consecutive [`SentReqs::tick`]s in closed
    /// form (for the simulator's idle-cycle-skipping engine). Entries
    /// age uniformly and retire in FIFO order, so subtracting and
    /// popping expired fronts is exactly equivalent to `cycles`
    /// individual ticks with no intervening pushes.
    pub fn skip(&mut self, cycles: u64) {
        if cycles == 0 || self.entries.is_empty() {
            return;
        }
        for e in self.entries.iter_mut() {
            e.remaining = e.remaining.saturating_sub(cycles);
        }
        while self.entries.front().is_some_and(|e| e.remaining == 0) {
            self.entries.pop_front();
        }
    }

    /// Whether `line_addr` is in flight as a *non-hit* (i.e. will occupy
    /// or merge into an MSHR entry shortly). Used to predict MSHR hits
    /// for requests issued back-to-back to the same line.
    pub fn pending_miss(&self, line_addr: Addr) -> bool {
        self.entries
            .iter()
            .any(|e| e.line_addr == line_addr && !e.spec_hit)
    }

    /// Number of in-flight non-hit requests to lines *not* yet in the
    /// snapshot — the hidden claim on free MSHR entries.
    pub fn hidden_entry_claims(&self, in_snapshot: impl Fn(Addr) -> bool) -> usize {
        let mut seen = Vec::new();
        for e in &self.entries {
            if !e.spec_hit && !in_snapshot(e.line_addr) && !seen.contains(&e.line_addr) {
                seen.push(e.line_addr);
            }
        }
        seen.len()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retires_after_latency() {
        let mut s = SentReqs::new(3, 5);
        s.push(0x40, false);
        for _ in 0..7 {
            s.tick();
            assert!(s.pending_miss(0x40));
        }
        s.tick(); // 8th cycle: retired
        assert!(!s.pending_miss(0x40));
        assert!(s.is_empty());
    }

    #[test]
    fn spec_hits_are_masked() {
        let mut s = SentReqs::new(3, 5);
        s.push(0x40, true);
        assert!(!s.pending_miss(0x40), "hit-tagged entries never claim MSHR");
        assert_eq!(s.hidden_entry_claims(|_| false), 0);
    }

    #[test]
    fn hidden_claims_deduplicate() {
        let mut s = SentReqs::new(3, 5);
        s.push(0x40, false);
        s.push(0x40, false); // merge-to-be
        s.push(0x80, false);
        assert_eq!(s.hidden_entry_claims(|_| false), 2);
        // If the snapshot already shows 0x40, only 0x80 is hidden.
        assert_eq!(s.hidden_entry_claims(|a| a == 0x40), 1);
    }

    #[test]
    fn fifo_order_retirement() {
        let mut s = SentReqs::new(1, 1);
        s.push(1, false);
        s.tick();
        s.push(2, false);
        s.tick(); // entry 1 retires (2 cycles), entry 2 has 1 left
        assert!(!s.pending_miss(1));
        assert!(s.pending_miss(2));
    }
}
