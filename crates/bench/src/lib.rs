//! Benchmark harness: regenerates every table and figure of the LLaMCAT
//! evaluation (Section 6) on top of the declarative [`campaign`] engine.
//!
//! Each `[[bench]]` target (harness = false) prints the rows/series of
//! one paper artifact:
//!
//! | target | paper artifact |
//! |---|---|
//! | `fig7` | Fig 7(a–f): throttling, arbitration and cumulative speedups for 70b/405b over sequence lengths |
//! | `fig8` | Fig 8: mechanism metrics for 70b @ 8K across the policy ladder |
//! | `fig9` | Fig 9(a,b): L2-capacity sweep at 32K |
//! | `table_sweeps` | Tables 2–4: throttling parameter sweeps |
//! | `area_cost` | Section 6.1 hardware-cost comparison |
//! | `sim_speed` | Criterion micro-benchmarks of the substrate itself |
//!
//! Scale is controlled with `LLAMCAT_SCALE` = `full` | `half` (default) |
//! `quick`: sequence lengths divide by 1 / 2 / 8. Orderings are stable
//! across scales; EXPERIMENTS.md records which scale produced the
//! committed numbers.
//!
//! The grid logic itself lives in [`campaign::Campaign`]: a serde
//! round-trippable definition of workloads × seq_lens × L2 sizes ×
//! [`PolicySpec`]s that executes in parallel (deterministically) and
//! streams JSONL records. The figure targets are thin wrappers over it.

pub mod campaign;

use std::time::Instant;

use llamcat::experiment::{geomean, Experiment, Model, Policy, RunReport};
use llamcat::spec::PolicySpec;

pub use campaign::{
    cell_spec_hash, run_experiments, Campaign, CampaignCell, CampaignReport, CellRecord,
    MachineSpec,
};

/// The build profile this bench binary was compiled under, for
/// embedding in machine-readable artifacts. Baked in at compile time
/// from Cargo's `PROFILE` (see `build.rs`); the `LLAMCAT_BENCH_PROFILE`
/// env var overrides it at runtime for custom profile names (Cargo only
/// reports the inherited family, so a `release-bench` build would
/// otherwise self-describe as plain `release`).
pub fn bench_profile() -> String {
    std::env::var("LLAMCAT_BENCH_PROFILE")
        .unwrap_or_else(|_| env!("LLAMCAT_BUILD_PROFILE").to_string())
}

/// One-line host context for bench artifacts: the logical CPU count —
/// the host property that most affects wall-clock numbers here, since
/// the campaign executor fans out one rayon chunk per core.
pub fn host_note() -> String {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    format!("nproc={cpus}")
}

/// The metadata fields every `*_JSON` bench artifact embeds, as a
/// ready-to-splice JSON fragment (two `"key": "value",` lines at
/// 2-space indent). Numbers are only comparable like-for-like: same
/// profile, same host note — archived artifacts carry both so a future
/// PR never diffs a release run against a debug one or a wider box.
pub fn bench_meta_json_fields() -> String {
    format!(
        "  \"profile\": \"{}\",\n  \"host\": \"{}\",\n",
        bench_profile(),
        host_note()
    )
}

/// Verdict of scanning a load sweep for the goodput knee — the first
/// rate where SLO attainment drops below threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoodputKnee {
    /// Attainment held at light load and fell below the threshold at
    /// this mean inter-arrival gap.
    Found { mean_gap: u64 },
    /// Attainment is below the threshold already at the lightest swept
    /// rate: the knee lies below the sweep's rate range, or the
    /// scenario's attainment ceiling sits under the threshold at every
    /// rate (small request counts quantize attainment in 1/n steps).
    /// Reporting the lightest gap as "the knee" here would be
    /// meaningless — every cell of a sweep degenerates to the same
    /// number regardless of policy.
    SaturatedAtLightest,
    /// Attainment never dropped below the threshold across the sweep.
    NotReached,
}

impl GoodputKnee {
    /// The knee gap, when one was genuinely located.
    pub fn gap(&self) -> Option<u64> {
        match self {
            GoodputKnee::Found { mean_gap } => Some(*mean_gap),
            _ => None,
        }
    }

    /// Stable label for machine-readable artifacts (same vocabulary as
    /// the latency knee's `knee_status`).
    pub fn status_label(&self) -> &'static str {
        match self {
            GoodputKnee::Found { .. } => "found",
            GoodputKnee::SaturatedAtLightest => "saturated_at_lightest",
            GoodputKnee::NotReached => "not_reached",
        }
    }
}

/// Locates the goodput knee on `(mean_gap, attainment)` sweep points
/// ordered lightest load first (descending mean gap). A knee is only
/// "found" if the lightest point itself meets the threshold — a scan
/// that fires on the very first point is reporting the sweep's edge,
/// not a knee (the failure mode that once made every `pr9_slo` cell
/// claim the identical goodput knee).
pub fn goodput_knee(points: &[(u64, f64)], threshold: f64) -> GoodputKnee {
    let Some(&(_, lightest)) = points.first() else {
        return GoodputKnee::NotReached;
    };
    if lightest < threshold {
        return GoodputKnee::SaturatedAtLightest;
    }
    match points.iter().find(|&&(_, a)| a < threshold) {
        Some(&(gap, _)) => GoodputKnee::Found { mean_gap: gap },
        None => GoodputKnee::NotReached,
    }
}

/// Sequence-length scale factor from `LLAMCAT_SCALE`.
pub fn scale_divisor() -> usize {
    match std::env::var("LLAMCAT_SCALE").as_deref() {
        Ok("full") => 1,
        Ok("quick") => 8,
        _ => 2,
    }
}

/// Human-readable scale label for output headers.
pub fn scale_label() -> String {
    let d = scale_divisor();
    match d {
        1 => "full".into(),
        2 => "half".into(),
        8 => "quick".into(),
        other => format!("1/{other}"),
    }
}

/// One grid cell to simulate (legacy shim over [`CampaignCell`]).
#[derive(Debug, Clone)]
pub struct Cell {
    pub model: Model,
    pub seq_len: usize,
    pub policy: Policy,
    pub l2_mb: u64,
}

impl Cell {
    /// The open-world cell this legacy shim stands for.
    pub fn to_campaign_cell(&self) -> CampaignCell {
        CampaignCell {
            workload: self.model.spec(),
            seq_len: self.seq_len,
            l2_mb: self.l2_mb,
            policy: self.policy.into(),
            mix: None,
            serve: None,
            kv: None,
        }
    }
}

/// Runs a set of cells in parallel (simulations are independent and
/// deterministic) and returns the reports in input order. Thin wrapper
/// over the campaign executor ([`run_experiments`]).
pub fn run_cells(cells: &[Cell]) -> Vec<RunReport> {
    let experiments: Vec<Experiment> = cells
        .iter()
        .map(|c| {
            Experiment::new(c.model, c.seq_len)
                .policy(c.policy)
                .l2_mb(c.l2_mb)
        })
        .collect();
    run_experiments(&experiments).expect("legacy cells are never degenerate")
}

/// Runs one experiment, timing the wall clock.
pub fn run_one(model: Model, seq_len: usize, policy: Policy, l2_mb: u64) -> (RunReport, f64) {
    let t0 = Instant::now();
    let r = Experiment::new(model, seq_len)
        .policy(policy)
        .l2_mb(l2_mb)
        .run();
    (r, t0.elapsed().as_secs_f64())
}

/// Formats a speedup table: one row per policy, one column per x value.
pub fn print_speedup_table(
    title: &str,
    xlabels: &[String],
    rows: &[(String, Vec<f64>)],
    note: &str,
) {
    println!("\n### {title}");
    if !note.is_empty() {
        println!("    ({note})");
    }
    print!("{:<16}", "policy");
    for x in xlabels {
        print!("{x:>10}");
    }
    println!("{:>10}", "geomean");
    for (name, values) in rows {
        print!("{name:<16}");
        for v in values {
            print!("{v:>9.3}x");
        }
        println!("{:>9.3}x", geomean(values));
    }
}

/// The standard policy ladder of Fig 7/8.
pub fn throttling_policies() -> Vec<PolicySpec> {
    vec![PolicySpec::dyncta(), PolicySpec::lcs(), PolicySpec::dynmg()]
}

/// Arbitration policies, each run on top of dynmg (Fig 7(b)/(e)).
pub fn arbitration_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::dynmg_cobrra(),
        PolicySpec::dynmg_b(),
        PolicySpec::dynmg_ma(),
        PolicySpec::dynmg_bma(),
    ]
}

/// Cumulative ladder (Fig 7(c)/(f)).
pub fn cumulative_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::dynmg(),
        PolicySpec::dynmg_b(),
        PolicySpec::dynmg_ma(),
        PolicySpec::dynmg_bma(),
    ]
}

/// Fig 9's policy set.
pub fn fig9_policies() -> Vec<PolicySpec> {
    vec![
        PolicySpec::dyncta(),
        PolicySpec::lcs(),
        PolicySpec::cobrra(),
        PolicySpec::dynmg(),
        PolicySpec::dynmg_cobrra(),
        PolicySpec::dynmg_bma(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_is_half() {
        // Unless the env var says otherwise in this test environment.
        if std::env::var("LLAMCAT_SCALE").is_err() {
            assert_eq!(scale_divisor(), 2);
            assert_eq!(scale_label(), "half");
        }
    }

    #[test]
    fn goodput_knee_on_synthetic_attainment_curves() {
        // Healthy curve: full attainment at light load, collapsing as
        // rate climbs — the knee is the first sub-threshold point.
        let healthy = [
            (500_000, 1.0),
            (250_000, 1.0),
            (125_000, 0.95),
            (62_500, 0.85),
            (31_250, 0.5),
        ];
        assert_eq!(
            goodput_knee(&healthy, 0.9),
            GoodputKnee::Found { mean_gap: 62_500 }
        );

        // Never drops: no knee inside the swept range.
        let flat = [(500_000, 1.0), (250_000, 0.95), (125_000, 0.92)];
        assert_eq!(goodput_knee(&flat, 0.9), GoodputKnee::NotReached);

        // Already below threshold at the lightest rate (e.g. an n=8
        // scenario whose ceiling is 7/8 = 0.875 under a tight
        // deadline): the old first-below scan reported the lightest
        // gap as "the knee" for every cell; it must classify as
        // saturated instead.
        let ceiling = [(500_000, 0.875), (250_000, 0.875), (125_000, 0.75)];
        assert_eq!(
            goodput_knee(&ceiling, 0.9),
            GoodputKnee::SaturatedAtLightest
        );

        // Exactly at threshold counts as meeting it (strict `<`).
        let edge = [(500_000, 0.9), (250_000, 0.899)];
        assert_eq!(
            goodput_knee(&edge, 0.9),
            GoodputKnee::Found { mean_gap: 250_000 }
        );

        assert_eq!(goodput_knee(&[], 0.9), GoodputKnee::NotReached);
        assert_eq!(GoodputKnee::Found { mean_gap: 7 }.gap(), Some(7));
        assert_eq!(GoodputKnee::SaturatedAtLightest.gap(), None);
        assert_eq!(
            GoodputKnee::SaturatedAtLightest.status_label(),
            "saturated_at_lightest"
        );
    }

    #[test]
    fn bench_meta_fields_are_well_formed() {
        // Baked-in profile is whatever this test binary was built
        // under; the fragment is two complete `"key": "value",` lines
        // ready to splice under a JSON object's opening brace.
        let fragment = bench_meta_json_fields();
        assert!(fragment.contains("\"profile\": \""));
        assert!(fragment.contains("\"host\": \"nproc="));
        assert_eq!(fragment.matches('\n').count(), 2);
        assert!(fragment.ends_with(",\n"));
        assert!(!bench_profile().is_empty());
    }

    #[test]
    fn policy_sets_are_complete() {
        assert_eq!(throttling_policies().len(), 3);
        assert_eq!(arbitration_policies().len(), 4);
        assert_eq!(cumulative_policies().len(), 4);
        assert_eq!(fig9_policies().len(), 6);
    }

    #[test]
    fn run_cells_preserves_order() {
        let cells = vec![
            Cell {
                model: Model::Llama3_70b,
                seq_len: 128,
                policy: Policy::unoptimized(),
                l2_mb: 16,
            },
            Cell {
                model: Model::Llama3_405b,
                seq_len: 128,
                policy: Policy::unoptimized(),
                l2_mb: 16,
            },
        ];
        let reports = run_cells(&cells);
        assert_eq!(reports[0].workload_label, "llama3 70b");
        assert_eq!(reports[1].workload_label, "llama3 405b");
    }

    #[test]
    fn legacy_cell_converts_to_campaign_cell() {
        let cell = Cell {
            model: Model::Llama3_70b,
            seq_len: 256,
            policy: Policy::dynmg_bma(),
            l2_mb: 32,
        };
        let cc = cell.to_campaign_cell();
        assert_eq!(cc.policy, PolicySpec::dynmg_bma());
        assert_eq!(cc.seq_len, 256);
        assert_eq!(cc.l2_mb, 32);
    }
}
