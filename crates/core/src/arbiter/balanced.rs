//! Balanced arbitration — policy "B" (Section 4.1).
//!
//! Default arbiters serve first-come-first-served; a core whose requests
//! happen to arrive early can monopolize the slice's limited MSHR
//! entries and starve its peers. Policy B tracks per-core progress
//! counters (requests served since operator start, the `cnt` registers
//! of Fig 4) and always picks the queued request whose requester has the
//! *smallest* counter value, FIFO among ties.

use llamcat_sim::arb::{ArbiterCtx, RequestArbiter};

/// Selects the queue index whose core has minimum served-count.
/// Shared by the standalone B arbiter and by BMA tie-breaking.
pub(crate) fn balanced_pick(ctx: &ArbiterCtx<'_>, candidates: &[usize]) -> Option<usize> {
    candidates
        .iter()
        .copied()
        .min_by_key(|&i| (ctx.served[ctx.queue[i].req.core], i))
}

/// Policy B: serve cores on an equivalent basis.
#[derive(Debug, Default, Clone)]
pub struct BalancedArbiter;

impl RequestArbiter for BalancedArbiter {
    fn select(&mut self, ctx: &ArbiterCtx<'_>) -> Option<usize> {
        let all: Vec<usize> = (0..ctx.queue.len()).collect();
        balanced_pick(ctx, &all)
    }

    fn next_event(&self, _now: u64) -> Option<u64> {
        None // stateless between selections: ticking is a no-op
    }

    fn name(&self) -> &'static str {
        "B"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llamcat_sim::mshr::MshrSnapshot;
    use llamcat_sim::types::MemReq;

    fn ctx_with<'a>(
        queue: &'a [llamcat_sim::arb::QueuedReq],
        served: &'a [u64],
        snap: &'a MshrSnapshot,
    ) -> ArbiterCtx<'a> {
        ArbiterCtx {
            queue,
            mshr: snap,
            served,
            cycle: 0,
        }
    }

    fn q(core: usize, addr: u64) -> llamcat_sim::arb::QueuedReq {
        llamcat_sim::arb::QueuedReq {
            req: MemReq {
                id: addr,
                core,
                request: 0,
                line_addr: addr,
                is_write: false,
                issued_at: 0,
            },
            enqueued_at: 0,
        }
    }

    #[test]
    fn picks_least_served_core() {
        let mut b = BalancedArbiter;
        let snap = MshrSnapshot::default();
        let queue = vec![q(0, 0x40), q(1, 0x80), q(2, 0xc0)];
        let served = vec![10, 2, 5];
        assert_eq!(b.select(&ctx_with(&queue, &served, &snap)), Some(1));
    }

    #[test]
    fn fifo_among_ties() {
        let mut b = BalancedArbiter;
        let snap = MshrSnapshot::default();
        let queue = vec![q(2, 0x40), q(1, 0x80), q(1, 0xc0)];
        let served = vec![0, 3, 3];
        // Cores 1 and 2... core 2 has served 3? served[2]=3, served[1]=3:
        // tie between all three queue entries' cores? served[2]=3 for
        // entry 0, served[1]=3 for entries 1 and 2. All tie; FIFO wins.
        assert_eq!(b.select(&ctx_with(&queue, &served, &snap)), Some(0));
    }

    #[test]
    fn empty_queue_yields_none() {
        let mut b = BalancedArbiter;
        let snap = MshrSnapshot::default();
        let queue: Vec<llamcat_sim::arb::QueuedReq> = vec![];
        assert_eq!(b.select(&ctx_with(&queue, &[0, 0], &snap)), None);
    }
}
