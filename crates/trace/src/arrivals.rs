//! Deterministic open-system arrival processes.
//!
//! PR 4's serving mixes were a *closed* system: every request was
//! pre-tagged into the `Program` with a fixed arrival cycle. Open-system
//! serving instead draws request arrival cycles from a seeded
//! [`ArrivalSpec`] and lets the simulator's request injector admit work
//! mid-run. This module is the arrival half of that contract: given a
//! request count it produces a sorted, reproducible arrival schedule —
//! the injector half lives in `llamcat-sim::serve`.
//!
//! All randomness is a hand-rolled splitmix64 stream keyed by the spec's
//! `seed`, so a spec serializes to JSON and replays to the identical
//! schedule on every run (the property the Skip-vs-Cycle differential
//! suite leans on).

use serde::{Deserialize, Serialize};

/// Simulated cycle count (mirrors `llamcat_sim::types::Cycle`; this
/// crate deliberately stays independent of the simulator's clock types
/// beyond the alias).
pub type Cycle = u64;

/// splitmix64: tiny, high-quality, dependency-free PRNG. One u64 of
/// state, one output per step.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform sample in `[0, 1)` with 53 bits of mantissa.
#[inline]
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Exponential inter-arrival gap with the given mean, rounded to whole
/// cycles. `1 - u` keeps the argument of `ln` in `(0, 1]`.
#[inline]
fn exp_gap(state: &mut u64, mean: u64) -> Cycle {
    let u = unit_f64(state);
    (-(mean as f64) * (1.0 - u).ln()).round() as Cycle
}

/// A deterministic, seeded arrival process: how request arrival cycles
/// are drawn for an open-system serving run.
///
/// Every variant yields a nondecreasing schedule; requests are numbered
/// in arrival order, so request ids double as the FCFS tiebreak when
/// two requests land on the same cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalSpec {
    /// One request every `period` cycles, starting at `start`.
    Fixed {
        period: Cycle,
        #[serde(default)]
        start: Cycle,
    },
    /// Poisson process: exponential inter-arrival gaps with mean
    /// `mean_gap` cycles (arrival rate = 1 / `mean_gap`).
    Poisson { mean_gap: u64, seed: u64 },
    /// Bursts of `burst` requests, `gap_in_burst` cycles apart inside a
    /// burst, with exponential inter-burst gaps of mean `burst_gap`.
    Bursty {
        burst: usize,
        gap_in_burst: Cycle,
        burst_gap: u64,
        seed: u64,
    },
    /// Trace replay: explicit arrival cycles (must cover every request;
    /// sorted on use).
    Trace { cycles: Vec<Cycle> },
}

impl ArrivalSpec {
    /// Validates the spec for a run of `n` requests.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        match self {
            ArrivalSpec::Fixed { .. } => Ok(()),
            ArrivalSpec::Poisson { mean_gap, .. } => {
                if *mean_gap == 0 {
                    Err("poisson arrival process needs mean_gap >= 1".into())
                } else {
                    Ok(())
                }
            }
            ArrivalSpec::Bursty {
                burst, burst_gap, ..
            } => {
                if *burst == 0 {
                    Err("bursty arrival process needs burst >= 1".into())
                } else if *burst_gap == 0 {
                    Err("bursty arrival process needs burst_gap >= 1".into())
                } else {
                    Ok(())
                }
            }
            ArrivalSpec::Trace { cycles } => {
                if cycles.len() < n {
                    Err(format!(
                        "arrival trace covers {} requests, run needs {n}",
                        cycles.len()
                    ))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// The arrival cycle of each of `n` requests, sorted nondecreasing.
    ///
    /// Panics on an invalid spec; call [`ArrivalSpec::validate`] first
    /// when the spec came from user input.
    pub fn arrivals(&self, n: usize) -> Vec<Cycle> {
        self.validate(n).expect("invalid arrival spec");
        match self {
            ArrivalSpec::Fixed { period, start } => {
                (0..n as u64).map(|i| start + i * period).collect()
            }
            ArrivalSpec::Poisson { mean_gap, seed } => {
                let mut state = *seed;
                let mut now = 0;
                (0..n)
                    .map(|_| {
                        now += exp_gap(&mut state, *mean_gap);
                        now
                    })
                    .collect()
            }
            ArrivalSpec::Bursty {
                burst,
                gap_in_burst,
                burst_gap,
                seed,
            } => {
                let mut state = *seed;
                let mut burst_start = 0;
                let mut out = Vec::with_capacity(n);
                while out.len() < n {
                    for i in 0..*burst {
                        if out.len() == n {
                            break;
                        }
                        out.push(burst_start + i as u64 * gap_in_burst);
                    }
                    // Advance past the burst's *span*, not just its start:
                    // an exponential draw smaller than (burst-1)*gap_in_burst
                    // would start the next burst inside the current one and
                    // break the nondecreasing-schedule contract.
                    let span = (*burst as u64 - 1) * gap_in_burst;
                    burst_start += span + exp_gap(&mut state, *burst_gap).max(1);
                }
                out
            }
            ArrivalSpec::Trace { cycles } => {
                // Sort first, then keep the earliest n: a surplus trace
                // replays its n earliest arrivals, not an arbitrary
                // prefix of the unsorted file.
                let mut out = cycles.clone();
                out.sort_unstable();
                out.truncate(n);
                out
            }
        }
    }

    /// Compact label for tables and JSONL (e.g. `poisson(g500,s7)`).
    pub fn label(&self) -> String {
        match self {
            ArrivalSpec::Fixed { period, start } => format!("fixed(p{period},s{start})"),
            ArrivalSpec::Poisson { mean_gap, seed } => format!("poisson(g{mean_gap},s{seed})"),
            ArrivalSpec::Bursty {
                burst,
                gap_in_burst,
                burst_gap,
                seed,
            } => format!("bursty(b{burst},i{gap_in_burst},g{burst_gap},s{seed})"),
            ArrivalSpec::Trace { cycles } => format!("trace[{}]", cycles.len()),
        }
    }

    /// Label for a run of `n` requests. Identical to [`ArrivalSpec::label`]
    /// except that a surplus replay trace surfaces how much of it the run
    /// actually uses: `trace[3 of 5]` means the 3 earliest of 5 recorded
    /// arrivals replay.
    pub fn label_for(&self, n: usize) -> String {
        match self {
            ArrivalSpec::Trace { cycles } if cycles.len() > n => {
                format!("trace[{n} of {}]", cycles.len())
            }
            _ => self.label(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fixed_is_an_arithmetic_schedule() {
        let a = ArrivalSpec::Fixed {
            period: 100,
            start: 7,
        };
        assert_eq!(a.arrivals(4), vec![7, 107, 207, 307]);
    }

    #[test]
    fn poisson_is_seeded_and_sorted() {
        let a = ArrivalSpec::Poisson {
            mean_gap: 500,
            seed: 42,
        };
        let x = a.arrivals(16);
        let y = a.arrivals(16);
        assert_eq!(x, y, "same seed must replay the same schedule");
        assert!(x.windows(2).all(|w| w[0] <= w[1]), "must be sorted");
        let b = ArrivalSpec::Poisson {
            mean_gap: 500,
            seed: 43,
        };
        assert_ne!(x, b.arrivals(16), "different seed, different schedule");
        // Mean gap is in the right ballpark (law of large numbers at
        // n = 512 with generous tolerance).
        let n = 512;
        let last = *a.arrivals(n).last().unwrap() as f64;
        let mean = last / n as f64;
        assert!((200.0..1000.0).contains(&mean), "mean gap {mean} off");
    }

    #[test]
    fn bursty_emits_bursts() {
        let a = ArrivalSpec::Bursty {
            burst: 3,
            gap_in_burst: 10,
            burst_gap: 10_000,
            seed: 1,
        };
        let x = a.arrivals(6);
        assert_eq!(x.len(), 6);
        // First burst is exactly 0, 10, 20.
        assert_eq!(&x[..3], &[0, 10, 20]);
        // Second burst starts strictly later and keeps the in-burst gap.
        assert!(x[3] > 20);
        assert_eq!(x[4] - x[3], 10);
        assert!(x.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn trace_replay_sorts_and_validates() {
        let a = ArrivalSpec::Trace {
            cycles: vec![300, 100, 100],
        };
        assert_eq!(a.arrivals(3), vec![100, 100, 300]);
        assert!(a.validate(4).is_err(), "short trace must be rejected");
    }

    #[test]
    fn surplus_trace_replays_the_earliest_arrivals() {
        // Pre-fix, the first n *unsorted* entries were taken, so this
        // replayed [900, 100] -> [100, 900] instead of the two earliest
        // recorded arrivals.
        let a = ArrivalSpec::Trace {
            cycles: vec![900, 100, 50, 700],
        };
        assert_eq!(a.arrivals(2), vec![50, 100]);
        assert_eq!(a.label(), "trace[4]");
        assert_eq!(a.label_for(2), "trace[2 of 4]", "surplus is surfaced");
        assert_eq!(a.label_for(4), "trace[4]", "exact cover keeps the label");
    }

    #[test]
    fn overlapping_bursts_stay_sorted() {
        // Regression pin for the arrival-order bug: an inter-burst gap
        // drawn smaller than the burst's span ((burst-1) * gap_in_burst)
        // used to start the next burst *inside* the current one. With
        // burst_gap = 1 every exponential draw is tiny, so the pre-fix
        // schedule was e.g. [0, 1000, 2000, 1, 1001, 2001, ...] —
        // non-monotonic, breaking the (arrival, id) FCFS contract.
        let a = ArrivalSpec::Bursty {
            burst: 3,
            gap_in_burst: 1_000,
            burst_gap: 1,
            seed: 7,
        };
        let x = a.arrivals(12);
        assert!(
            x.windows(2).all(|w| w[0] <= w[1]),
            "bursty schedule must be nondecreasing, got {x:?}"
        );
        // The burst structure survives the fix: in-burst gaps are exact.
        assert_eq!(&x[..3], &[0, 1_000, 2_000]);
        assert!(x[3] > x[2], "next burst starts after the previous ends");
        assert_eq!(x[4] - x[3], 1_000);
    }

    // Every arrival-process variant yields a nondecreasing schedule
    // (the documented contract request ids lean on as the FCFS
    // tiebreak). Fails on the pre-fix Bursty generator whenever the
    // inter-burst draw lands inside the previous burst's span.
    proptest! {
        #[test]
        fn all_variants_are_nondecreasing(
            kind in 0usize..4,
            period in 0u64..5_000,
            start in 0u64..10_000,
            mean in 1u64..5_000,
            burst in 1usize..6,
            gap_in_burst in 0u64..3_000,
            burst_gap in 1u64..100,
            seed in 0u64..1_000,
            n in 1usize..33,
            raw in proptest::collection::vec(0u64..1_000_000, 33..64),
        ) {
            let spec = match kind {
                0 => ArrivalSpec::Fixed { period, start },
                1 => ArrivalSpec::Poisson { mean_gap: mean, seed },
                2 => ArrivalSpec::Bursty { burst, gap_in_burst, burst_gap, seed },
                _ => ArrivalSpec::Trace { cycles: raw },
            };
            spec.validate(n).expect("generated specs are valid");
            let x = spec.arrivals(n);
            prop_assert_eq!(x.len(), n);
            prop_assert!(
                x.windows(2).all(|w| w[0] <= w[1]),
                "{} produced a decreasing schedule: {:?}",
                spec.label(),
                x
            );
            // Replays are deterministic: the schedule is a pure function
            // of the spec.
            prop_assert_eq!(x, spec.arrivals(n));
        }
    }

    #[test]
    fn serde_round_trip() {
        let a = ArrivalSpec::Bursty {
            burst: 4,
            gap_in_burst: 5,
            burst_gap: 2_000,
            seed: 9,
        };
        let s = serde_json::to_string(&a).unwrap();
        let b: ArrivalSpec = serde_json::from_str(&s).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.arrivals(8), b.arrivals(8));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            ArrivalSpec::Fixed {
                period: 9,
                start: 0
            }
            .label(),
            "fixed(p9,s0)"
        );
        assert_eq!(
            ArrivalSpec::Poisson {
                mean_gap: 500,
                seed: 7
            }
            .label(),
            "poisson(g500,s7)"
        );
    }
}
