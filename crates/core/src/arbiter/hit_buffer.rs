//! The hit buffer: a FIFO of recently observed cache-hit line addresses
//! (Section 4.3.1, the red `hit buffer (FIFO)` of Fig 4).
//!
//! The arbiter cannot afford a real tag lookup per queued request, so it
//! *speculates*: an address that hit recently (or was just filled) is
//! likely to hit again. Mispredictions are harmless — the real lookup
//! still decides — they only cost arbitration quality.

use std::collections::VecDeque;

use llamcat_sim::types::Addr;

/// Bounded FIFO of line addresses used for cache-hit speculation.
#[derive(Debug, Clone)]
pub struct HitBuffer {
    entries: VecDeque<Addr>,
    capacity: usize,
}

impl HitBuffer {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        HitBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Records a (predicted-to-repeat) hit address; evicts the oldest
    /// entry when full. Duplicate of the newest entry is skipped to
    /// preserve capacity under bursty repeats.
    pub fn record(&mut self, line_addr: Addr) {
        if self.entries.back() == Some(&line_addr) {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(line_addr);
    }

    /// Speculative lookup.
    pub fn contains(&self, line_addr: Addr) -> bool {
        self.entries.contains(&line_addr)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_finds() {
        let mut h = HitBuffer::new(4);
        h.record(0x40);
        h.record(0x80);
        assert!(h.contains(0x40));
        assert!(h.contains(0x80));
        assert!(!h.contains(0xc0));
    }

    #[test]
    fn fifo_eviction() {
        let mut h = HitBuffer::new(2);
        h.record(1);
        h.record(2);
        h.record(3);
        assert!(!h.contains(1), "oldest evicted");
        assert!(h.contains(2));
        assert!(h.contains(3));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn consecutive_duplicates_coalesce() {
        let mut h = HitBuffer::new(2);
        h.record(7);
        h.record(7);
        h.record(7);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut h = HitBuffer::new(2);
        h.record(1);
        h.clear();
        assert!(h.is_empty());
        assert!(!h.contains(1));
    }
}
