//! # llamcat-repro — umbrella crate for the LLaMCAT reproduction
//!
//! Re-exports the three library crates so examples, integration tests
//! and downstream users have a single dependency:
//!
//! * [`sim`] (`llamcat-sim`) — cycle-level simulator substrate
//!   (DDR5 DRAM, sliced LLC with MSHRs, vector cores, mesh NoC);
//! * [`trace`] (`llamcat-trace`) — analytical dataflow model and
//!   memory-trace generator (the Timeloop-class front-end), including
//!   the open `Workload` trait (Logit, attention-output A·V, chunked
//!   prefill) and the serde `WorkloadSpec` campaign currency;
//! * [`llamcat`] — the paper's contribution: balanced / MSHR-aware
//!   LLC arbitration and two-level dynamic multi-gear throttling, with
//!   the DYNCTA / LCS / COBRRA baselines, the experiment API and the
//!   serializable `PolicySpec` registry.
//!
//! Declarative grid sweeps (`Campaign`) live in the `llamcat-bench`
//! crate; see `examples/campaign.rs`.
//!
//! See README.md for the quickstart and DESIGN.md for the architecture.

pub use llamcat;
pub use llamcat_sim as sim;
pub use llamcat_trace as trace;

/// One-line smoke check used by docs and CI: simulates a tiny decode
/// workload end to end and returns the cycle count.
pub fn smoke() -> u64 {
    use llamcat::experiment::{Experiment, Model};
    Experiment::new(Model::Llama3_70b, 128).run().cycles
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke_runs() {
        assert!(super::smoke() > 0);
    }
}
